"""Tests for end-to-end request tracing across the service daemon.

Layered like the feature itself: trace-context propagation, structured
logging, and the thread-safe span tracer are unit-tested in-process;
trace stitching (exact latency partition, cross-process clock
alignment, killed/coalesced shapes) is unit-tested on fabricated
worker replies; then a real daemon proves the whole loop — request →
``trace_id`` → ``/debug/traces/<id>`` → segments that exactly
partition the observed latency, with ``/metrics`` exemplars pointing
at retained traces and every error body carrying correlation ids.
"""

import http.client
import io
import json
import re
import threading
import time

import pytest

from repro.analysis.timeline import REQUEST_PID, request_trace_to_chrome, \
    validate_chrome_trace
from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    TraceContext,
    bound_context,
    context_from_headers,
    context_from_wire,
    current_context,
    get_logger,
    new_trace_id,
)
from repro.obs.context import PARENT_SPAN_HEADER, TRACE_ID_HEADER, \
    valid_trace_id
from repro.obs.log import LogRing, configure, log_ring
from repro.service import (
    FlightRecorder,
    RequestTrace,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ServiceDeadline,
    ServiceError,
    ServiceOverloaded,
    render_trace,
)

SLOW = {"algorithm": "mesh-allreduce", "nodes": 6, "gpus": 8,
        "buffer_mb": 16.0, "mbs": 8}
FAST = {"algorithm": "ring-allreduce", "nodes": 1, "gpus": 8,
        "buffer_mb": 16.0, "mbs": 4}


# ----------------------------------------------------------------------
# Trace context propagation
# ----------------------------------------------------------------------


class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext(new_trace_id(), parent_span_id="ab" * 8)
        headers = {k.lower(): v for k, v in context.to_headers().items()}
        back = context_from_headers(headers)
        assert back.trace_id == context.trace_id
        assert back.parent_span_id == context.parent_span_id

    def test_no_header_means_no_context(self):
        assert context_from_headers({}) is None

    def test_malformed_trace_id_is_replaced_not_rejected(self):
        # Tracing is diagnostics: a hostile/garbled header must never
        # fail the request, and must never reach the logs verbatim.
        for bad in ("ZZZ", "x" * 200, "short", "deadbeef!!"):
            context = context_from_headers({TRACE_ID_HEADER.lower(): bad})
            assert valid_trace_id(context.trace_id)
            assert context.trace_id != bad

    def test_malformed_parent_span_is_dropped(self):
        context = context_from_headers({
            TRACE_ID_HEADER.lower(): new_trace_id(),
            PARENT_SPAN_HEADER.lower(): "not hex",
        })
        assert context.parent_span_id is None

    def test_wire_round_trip_and_tolerance(self):
        context = TraceContext(new_trace_id(), sampled=False)
        back = context_from_wire(context.to_wire())
        assert back.trace_id == context.trace_id
        assert back.sampled is False
        assert context_from_wire(None) is None
        assert context_from_wire({"trace_id": "!!"}) is None

    def test_ambient_context_nests_and_restores(self):
        outer = TraceContext(new_trace_id())
        inner = TraceContext(new_trace_id())
        assert current_context() is None
        with bound_context(outer):
            assert current_context() is outer
            with bound_context(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------


class TestStructuredLog:
    def test_ring_is_bounded_and_filters_by_trace(self):
        ring = LogRing(capacity=4)
        for index in range(8):
            ring.append({"event": f"e{index}", "trace_id": str(index % 2)})
        assert len(ring) == 4
        events = [r["event"] for r in ring.tail()]
        assert events == ["e4", "e5", "e6", "e7"]  # oldest first
        assert all(r["trace_id"] == "1" for r in ring.tail(trace_id="1"))

    def test_logger_picks_up_ambient_trace_id(self):
        log_ring().clear()
        logger = get_logger("test-component")
        context = TraceContext(new_trace_id())
        with bound_context(context):
            record = logger.info("correlated", detail=7)
        plain = logger.info("uncorrelated")
        assert record["trace_id"] == context.trace_id
        assert record["component"] == "test-component"
        assert record["detail"] == 7
        assert "trace_id" not in plain
        tail = log_ring().tail(trace_id=context.trace_id)
        assert [r["event"] for r in tail] == ["correlated"]

    def test_stream_sink_emits_parseable_json_lines(self):
        stream = io.StringIO()
        configure(stream=stream)
        try:
            get_logger("sink").info("hello", answer=42)
        finally:
            configure(stream=None)
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "hello" and record["answer"] == 42

    def test_unserializable_fields_never_raise(self):
        stream = io.StringIO()
        configure(stream=stream)
        try:
            get_logger("sink").info("odd", obj=object())
        finally:
            configure(stream=None)
        assert json.loads(stream.getvalue().strip())["event"] == "odd"


# ----------------------------------------------------------------------
# Thread-safe span tracer
# ----------------------------------------------------------------------


class TestThreadedSpanTracer:
    def test_threads_keep_independent_stacks(self):
        """Spans opened by one thread must never nest under an
        unrelated span another thread happens to have open."""
        tracer = SpanTracer()
        barrier = threading.Barrier(3)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # all three roots open simultaneously
                with tracer.span(f"{name}-child"):
                    time.sleep(0.005)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(r.name for r in tracer.roots) == ["t0", "t1", "t2"]
        for root in tracer.roots:
            assert [c.name for c in root.children] == [f"{root.name}-child"]

    def test_epoch_wall_anchors_monotonic_epoch(self):
        before = time.time()
        tracer = SpanTracer()
        assert before <= tracer.epoch_wall <= time.time()


# ----------------------------------------------------------------------
# Metrics: source watermarks + exemplars
# ----------------------------------------------------------------------


def _counter_snapshot(value):
    return {"jobs_total": {"type": "counter", "help": "",
                           "samples": [{"labels": {}, "value": value}]}}


def _counter_value(registry, name, **labels):
    for sample in registry.to_json()[name]["samples"]:
        if sample["labels"] == labels:
            return sample["value"]
    return None


class TestMergeWatermarks:
    def test_cumulative_snapshots_never_double_count(self):
        registry = MetricsRegistry()
        registry.merge_json(_counter_snapshot(5), source="worker-0")
        registry.merge_json(_counter_snapshot(5), source="worker-0")
        assert _counter_value(registry, "jobs_total") == 5
        registry.merge_json(_counter_snapshot(7), source="worker-0")
        assert _counter_value(registry, "jobs_total") == 7

    def test_watermarks_are_per_source(self):
        registry = MetricsRegistry()
        registry.merge_json(_counter_snapshot(5), source="worker-0")
        registry.merge_json(_counter_snapshot(5), source="worker-1")
        assert _counter_value(registry, "jobs_total") == 10

    def test_counter_reset_flags_worker_restart(self):
        """A counter falling below its watermark means the worker
        process was respawned with a fresh registry: merge the full new
        value (monotonic totals) and count one detected restart."""
        registry = MetricsRegistry()
        registry.merge_json(_counter_snapshot(5), source="worker-0")
        registry.merge_json(_counter_snapshot(2), source="worker-0")
        assert _counter_value(registry, "jobs_total") == 7
        assert _counter_value(
            registry, "service_worker_restarts_total",
            source="worker-0", detected="counter-reset",
        ) == 1
        # The next snapshot resumes delta merging from the new watermark.
        registry.merge_json(_counter_snapshot(3), source="worker-0")
        assert _counter_value(registry, "jobs_total") == 8

    def test_histogram_reset_detection(self):
        def snap(count, total, bucket_counts):
            return {"lat": {
                "type": "histogram", "help": "", "buckets": [1.0, 2.0],
                "samples": [{"labels": {}, "count": count, "sum": total,
                             "min": 0.5, "max": 2.5,
                             "bucket_counts": list(bucket_counts)}],
            }}

        registry = MetricsRegistry()
        registry.merge_json(snap(3, 4.0, [1, 1, 1]), source="worker-0")
        registry.merge_json(snap(3, 4.0, [1, 1, 1]), source="worker-0")
        series = registry.get("lat").series[()]
        assert series.count == 3 and series.bucket_counts == [1, 1, 1]
        # Reset: the respawned worker reports a smaller registry.
        registry.merge_json(snap(1, 0.5, [1, 0, 0]), source="worker-0")
        series = registry.get("lat").series[()]
        assert series.count == 4 and series.bucket_counts == [2, 1, 1]
        assert _counter_value(
            registry, "service_worker_restarts_total",
            source="worker-0", detected="counter-reset",
        ) == 1

    def test_sourceless_merge_is_plain_addition(self):
        registry = MetricsRegistry()
        registry.merge_json(_counter_snapshot(5))
        registry.merge_json(_counter_snapshot(5))
        assert _counter_value(registry, "jobs_total") == 10


class TestExemplars:
    def test_exemplar_renders_on_its_bucket_only(self):
        registry = MetricsRegistry()
        registry.observe("lat_ms", 3.0, exemplar={"trace_id": "ab12cd34"},
                         endpoint="simulate")
        registry.observe("lat_ms", 3.5, endpoint="simulate")
        text = registry.to_prometheus()
        tagged = [l for l in text.splitlines() if "# {" in l]
        assert len(tagged) == 1
        assert '# {trace_id="ab12cd34"} 3' in tagged[0]
        assert "_bucket" in tagged[0]

    def test_no_exemplar_means_byte_identical_buckets(self):
        registry = MetricsRegistry()
        registry.observe("lat_ms", 3.0)
        for line in registry.to_prometheus().splitlines():
            if "_bucket" in line:
                assert " # " not in line

    def test_exemplars_survive_json_round_trip(self):
        registry = MetricsRegistry()
        registry.observe("lat_ms", 3.0, exemplar={"trace_id": "ab12cd34"})
        merged = MetricsRegistry()
        merged.merge_json(json.loads(json.dumps(registry.to_json())))
        assert '# {trace_id="ab12cd34"}' in merged.to_prometheus()


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


def _trace(trace_id, status=200, total_us=1000.0):
    return {"trace_id": trace_id, "request_id": trace_id, "op": "simulate",
            "status": status, "total_us": total_us, "coalesced": False,
            "error": None if status == 200 else "boom", "spans": []}


class TestFlightRecorder:
    def test_keeps_the_slowest_successes(self):
        recorder = FlightRecorder(slow_capacity=2, error_capacity=2)
        assert recorder.record(_trace("a", total_us=10))
        assert recorder.record(_trace("b", total_us=30))
        assert recorder.record(_trace("c", total_us=20))  # evicts "a"
        assert not recorder.record(_trace("d", total_us=5))  # too fast
        assert recorder.get("a") is None and recorder.get("d") is None
        assert recorder.get("b") and recorder.get("c")
        assert recorder.recorded == 3 and recorder.evicted == 1

    def test_errors_are_fifo_newest_win(self):
        recorder = FlightRecorder(slow_capacity=2, error_capacity=2)
        for trace_id in ("e1", "e2", "e3"):
            assert recorder.record(_trace(trace_id, status=500))
        assert recorder.get("e1") is None
        assert recorder.get("e2") and recorder.get("e3")

    def test_summaries_order_and_shape(self):
        recorder = FlightRecorder(slow_capacity=4, error_capacity=4)
        recorder.record(_trace("s1", total_us=10))
        recorder.record(_trace("s2", total_us=99))
        recorder.record(_trace("e1", status=504))
        recorder.record(_trace("e2", status=429))
        summaries = recorder.summaries()
        assert [s["trace_id"] for s in summaries] == ["e2", "e1", "s2", "s1"]
        assert summaries[0]["retained_as"] == "error"
        assert summaries[2]["retained_as"] == "slow"

    def test_duplicate_ids_never_clobber(self):
        recorder = FlightRecorder()
        assert recorder.record(_trace("x", total_us=10))
        assert not recorder.record(_trace("x", total_us=99))
        assert recorder.get("x")["total_us"] == 10

    def test_log_tail_is_snapshotted(self):
        recorder = FlightRecorder()
        recorder.record(_trace("x"), logs=[{"event": "request-finished"}])
        assert recorder.get("x")["logs"] == [{"event": "request-finished"}]


# ----------------------------------------------------------------------
# Trace stitching (fabricated worker replies)
# ----------------------------------------------------------------------


def _assert_exact_partition(stitched):
    """Top-level segments must tile [0, total_us] with no gap/overlap."""
    segments = stitched["spans"]
    assert segments, "stitched trace has no segments"
    cursor = 0.0
    for segment in segments:
        assert segment["start_us"] == pytest.approx(cursor, abs=0.5)
        assert segment["duration_us"] >= 0.0
        cursor = segment["start_us"] + segment["duration_us"]
    assert cursor == pytest.approx(stitched["total_us"], abs=0.5)


def _inside(child, start_us, end_us):
    assert child["start_us"] >= start_us - 1e-6
    assert child["start_us"] + child["duration_us"] <= end_us + 1e-6
    for grandchild in child["children"]:
        _inside(grandchild, child["start_us"],
                child["start_us"] + child["duration_us"])


class TestRequestTraceStitch:
    def test_leader_success_partitions_exactly(self):
        trace = RequestTrace(new_trace_id(), "simulate")
        trace.annotate(endpoint="simulate")
        time.sleep(0.002)
        trace.mark_submitted()
        started = trace.t0_wall + 0.004
        ended = trace.t0_wall + 0.008
        time.sleep(0.008)
        trace.mark_reply({
            "started_wall": started, "ended_wall": ended, "worker": 1,
            "epoch_wall": started,
            "spans": [{"name": "plan", "start_us": 100.0,
                       "duration_us": 2000.0, "attrs": {}, "counters": {},
                       "children": []}],
        })
        stitched = trace.stitch(200)
        names = [s["name"] for s in stitched["spans"]]
        assert names == ["admission", "queue", "worker-compute", "serialize"]
        _assert_exact_partition(stitched)
        compute = stitched["spans"][2]
        assert compute["attrs"]["worker"] == "1"
        (child,) = compute["children"]
        # Aligned into request time: epoch_wall == started, so the span
        # starts 100us after the worker-compute segment opens.
        expected = (started - trace.t0_wall) * 1e6 + 100.0
        assert child["start_us"] == pytest.approx(expected, abs=0.5)
        _inside(child, compute["start_us"],
                compute["start_us"] + compute["duration_us"])

    def test_clock_skew_is_clamped_inside_parent_bounds(self):
        """A worker clock running ahead must not push child spans
        outside the worker-compute segment the daemon observed."""
        trace = RequestTrace(new_trace_id(), "simulate")
        trace.mark_submitted()
        started = trace.t0_wall + 0.001
        ended = trace.t0_wall + 0.002
        time.sleep(0.004)
        trace.mark_reply({
            "started_wall": started, "ended_wall": ended, "worker": 0,
            "epoch_wall": started + 5.0,  # 5s of (pathological) skew
            "spans": [{"name": "plan", "start_us": 0.0,
                       "duration_us": 9e6, "attrs": {}, "counters": {},
                       "children": [{"name": "compile", "start_us": 1.0,
                                     "duration_us": 8e6, "attrs": {},
                                     "counters": {}, "children": []}]}],
        })
        stitched = trace.stitch(200)
        _assert_exact_partition(stitched)
        compute = next(
            s for s in stitched["spans"] if s["name"] == "worker-compute"
        )
        for child in compute["children"]:
            _inside(child, compute["start_us"],
                    compute["start_us"] + compute["duration_us"])

    def test_killed_job_ends_in_killed_segment(self):
        trace = RequestTrace(new_trace_id(), "simulate")
        trace.mark_submitted()
        time.sleep(0.002)
        trace.mark_error("deadline (5 ms) expired")
        stitched = trace.stitch(504)
        names = [s["name"] for s in stitched["spans"]]
        assert names == ["admission", "queue", "killed", "serialize"]
        killed = stitched["spans"][2]
        assert killed["attrs"]["error"].startswith("deadline")
        assert killed["duration_us"] > 0
        _assert_exact_partition(stitched)
        assert stitched["error"] == "deadline (5 ms) expired"

    def test_waiter_references_leader_instead_of_duplicating(self):
        leader_id = new_trace_id()
        trace = RequestTrace(new_trace_id(), "simulate")
        time.sleep(0.001)
        trace.mark_attached(leader_id)
        time.sleep(0.002)
        trace.mark_reply(None)
        stitched = trace.stitch(200)
        names = [s["name"] for s in stitched["spans"]]
        assert names == ["admission", "coalesce-wait", "serialize"]
        assert stitched["coalesced"] is True
        assert stitched["leader_trace_id"] == leader_id
        wait = stitched["spans"][1]
        assert wait["attrs"]["leader_trace_id"] == leader_id
        assert not wait["children"]  # exactly-once: spans live with leader
        _assert_exact_partition(stitched)

    def test_shed_request_never_reaches_the_pool(self):
        trace = RequestTrace(new_trace_id(), "simulate")
        trace.mark_error("shed: request queue full")
        stitched = trace.stitch(429)
        names = [s["name"] for s in stitched["spans"]]
        assert names == ["admission", "killed", "serialize"]
        _assert_exact_partition(stitched)

    def test_render_is_humane(self):
        trace = RequestTrace(new_trace_id(), "compile")
        trace.request_id = "req-1"
        trace.mark_reply(None)
        text = render_trace(trace.stitch(200))
        assert trace.trace_id in text and "request_id=req-1" in text
        assert "admission" in text


class TestPerfettoExport:
    def test_request_trace_exports_to_lane_9993(self):
        trace = RequestTrace(new_trace_id(), "simulate")
        trace.mark_submitted()
        time.sleep(0.002)
        trace.mark_reply({"started_wall": trace.t0_wall + 0.001,
                          "ended_wall": trace.t0_wall + 0.0015,
                          "worker": 0})
        chrome = request_trace_to_chrome(trace.stitch(200))
        validate_chrome_trace(chrome)
        slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert slices and all(e["pid"] == REQUEST_PID for e in slices)
        assert chrome["otherData"]["trace_id"] == trace.trace_id


# ----------------------------------------------------------------------
# Trace sampling
# ----------------------------------------------------------------------


class TestTraceSampling:
    def _daemon(self, rate):
        return ServiceDaemon(ServiceConfig(trace_sample=rate))

    def test_always_and_never(self):
        assert all(self._daemon(1.0)._sample_trace() for _ in range(8))
        assert not any(self._daemon(0.0)._sample_trace() for _ in range(8))

    def test_every_nth_is_deterministic_and_uniform(self):
        daemon = self._daemon(1 / 16)
        samples = [daemon._sample_trace() for _ in range(64)]
        assert sum(samples) == 4
        assert samples[0] is True  # the first request is always traced
        assert all(samples[i] for i in (0, 16, 32, 48))


# ----------------------------------------------------------------------
# Daemon end-to-end (real HTTP)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("tracing-cache")
    daemon = ServiceDaemon(ServiceConfig(
        port=0, workers=2, queue_depth=8, cache_dir=str(cache_dir),
        default_deadline_ms=60_000.0,
    ))
    daemon.start()
    yield daemon
    daemon.stop()


@pytest.fixture
def client(daemon):
    with ServiceClient("127.0.0.1", daemon.port) as client:
        yield client


class TestDaemonTracing:
    def test_request_is_fully_reconstructable_post_hoc(self, client):
        reply = client.simulate(**FAST)
        trace = client.request_trace(reply["trace_id"])
        assert trace["trace_id"] == reply["trace_id"]
        assert trace["request_id"] == reply["request_id"]
        assert trace["op"] == "simulate" and trace["status"] == 200
        names = [s["name"] for s in trace["spans"]]
        assert names == ["admission", "queue", "worker-compute", "serialize"]
        _assert_exact_partition(trace)
        compute = trace["spans"][2]
        assert compute["children"], "worker spans were not stitched in"
        worker_names = {c["name"] for c in compute["children"]}
        assert "plan" in worker_names or "simulate" in worker_names
        for child in compute["children"]:
            _inside(child, compute["start_us"],
                    compute["start_us"] + compute["duration_us"])
        assert compute["attrs"]["worker"] in ("0", "1")
        # The admission segment carries the request-level attributes.
        assert trace["spans"][0]["attrs"]["endpoint"] == "simulate"
        assert trace["spans"][0]["attrs"]["breaker"] == "closed"

    def test_trace_carries_correlated_log_tail(self, client):
        trace_id = new_trace_id()
        client.simulate(trace_id=trace_id, **FAST)
        trace = client.request_trace(trace_id)
        logs = trace["logs"]
        assert logs and all(r["trace_id"] == trace_id for r in logs)
        assert any(r["event"] == "request-finished" for r in logs)

    def test_client_trace_id_round_trips(self, client):
        trace_id = "ab" * 16
        reply = client.simulate(trace_id=trace_id, **FAST)
        assert reply["trace_id"] == trace_id
        assert client.request_trace(trace_id)["trace_id"] == trace_id

    def test_malformed_client_trace_id_is_replaced(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                          timeout=60)
        try:
            conn.request("POST", "/v1/simulate", body=json.dumps(FAST),
                         headers={TRACE_ID_HEADER: "Not A Trace!"})
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 200
        assert valid_trace_id(payload["trace_id"])

    def test_error_bodies_carry_correlation_ids(self, client, daemon):
        # 400: parse failure — request_id falls back to the trace id.
        with pytest.raises(ServiceError) as excinfo:
            client.simulate("no-such-algorithm")
        payload = excinfo.value.payload
        assert payload["trace_id"] and valid_trace_id(payload["trace_id"])
        assert payload["request_id"] == payload["trace_id"]
        # 400: body that is not JSON at all.
        conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                          timeout=30)
        try:
            conn.request("POST", "/v1/simulate", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert raw["request_id"] and raw["trace_id"]

    def test_deadline_kill_trace_ends_in_killed_span(self, client):
        with pytest.raises(ServiceDeadline) as excinfo:
            client.simulate(deadline_ms=1, **SLOW)
        payload = excinfo.value.payload
        trace = client.request_trace(payload["trace_id"])
        assert trace["status"] == 504
        names = [s["name"] for s in trace["spans"]]
        assert "killed" in names
        killed = next(s for s in trace["spans"] if s["name"] == "killed")
        assert "deadline" in killed["attrs"]["error"]
        assert names[-1] == "serialize"  # response build closes the trace
        _assert_exact_partition(trace)

    def test_shed_429_body_and_trace(self, tmp_path):
        daemon = ServiceDaemon(ServiceConfig(port=0, workers=1,
                                             queue_depth=0))
        daemon.start()
        try:
            with ServiceClient("127.0.0.1", daemon.port) as shed_client:
                with pytest.raises(ServiceOverloaded) as excinfo:
                    shed_client.simulate(**FAST)
                payload = excinfo.value.payload
                assert payload["request_id"] and payload["trace_id"]
                trace = shed_client.request_trace(payload["trace_id"])
            assert trace["status"] == 429
            assert [s["name"] for s in trace["spans"]] == [
                "admission", "killed", "serialize"
            ]
            assert "shed" in trace["error"]
        finally:
            daemon.stop()

    def test_coalesced_requests_account_spans_exactly_once(self, daemon):
        body = {**SLOW, "nodes": 4}  # cold fingerprint for this daemon
        replies = []
        lock = threading.Lock()

        def call():
            with ServiceClient("127.0.0.1", daemon.port,
                               timeout_s=180.0) as c:
                reply = c.simulate(**body)
                with lock:
                    replies.append(reply)

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
            time.sleep(0.05)  # leader first, waiters while it compiles
        for thread in threads:
            thread.join(timeout=180)
        assert len(replies) == 3
        leaders = [r for r in replies if not r["coalesced"]]
        waiters = [r for r in replies if r["coalesced"]]
        assert len(leaders) == 1 and len(waiters) == 2
        with ServiceClient("127.0.0.1", daemon.port) as c:
            traces = {
                r["trace_id"]: c.request_trace(r["trace_id"])
                for r in replies
            }
        leader_trace = traces[leaders[0]["trace_id"]]
        compute_owners = [
            t for t in traces.values()
            if any(s["name"] == "worker-compute" and s["children"]
                   for s in t["spans"])
        ]
        # Exactly one trace owns the shared worker spans...
        assert compute_owners == [leader_trace]
        # ...and every waiter references it instead of duplicating it.
        for waiter in waiters:
            trace = traces[waiter["trace_id"]]
            assert trace["coalesced"] is True
            assert trace["leader_trace_id"] == leader_trace["trace_id"]
            wait = next(
                s for s in trace["spans"] if s["name"] == "coalesce-wait"
            )
            assert wait["attrs"]["leader_trace_id"] == \
                leader_trace["trace_id"]
            _assert_exact_partition(trace)

    def test_debug_requests_index(self, client):
        client.simulate(**FAST)
        index = client.debug_requests()
        assert index["retained"] >= 1
        assert index["recorded"] >= index["retained"]
        assert index["trace_sample"] == 1.0
        entry = index["requests"][0]
        assert {"trace_id", "op", "status", "total_us",
                "retained_as"} <= set(entry)
        assert client.request_trace(entry["trace_id"])

    def test_unknown_trace_is_an_explained_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request_trace("deadbeefdeadbeef")
        assert excinfo.value.status == 404
        assert "deadbeef" in str(excinfo.value)

    def test_metrics_exemplars_resolve_to_retained_traces(self, client):
        client.simulate(**FAST)
        text = client.metrics()
        exemplar_ids = set(re.findall(
            r'# \{trace_id="([0-9a-f]+)"\}', text
        ))
        assert exemplar_ids, "no exemplars in /metrics after traffic"
        resolved = 0
        for trace_id in exemplar_ids:
            try:
                assert client.request_trace(trace_id)["trace_id"] == trace_id
                resolved += 1
            except ServiceError:
                pass  # an exemplar may outlive its evicted trace
        assert resolved >= 1

    def test_cli_trace_request_end_to_end(self, daemon, client, tmp_path,
                                          capsys):
        reply = client.simulate(**FAST)
        out = tmp_path / "request-trace.json"
        code = main([
            "trace-request", reply["trace_id"],
            "--port", str(daemon.port), "--output", str(out),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert reply["trace_id"] in printed and "worker-compute" in printed
        chrome = json.loads(out.read_text())
        validate_chrome_trace(chrome)
        slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert slices and all(e["pid"] == REQUEST_PID for e in slices)
        assert main([
            "trace-request", "deadbeefdeadbeef", "--port", str(daemon.port),
        ]) == 1

"""Replan-and-resume recovery: checkpoint, residual replanning, verifier."""

import pytest

from repro.algorithms.ring import ring_allreduce
from repro.analysis import verify_delivery
from repro.analysis.verify_delivery import (
    DIRECT,
    RELAY_IN,
    RELAY_OUT,
    DeliveryError,
)
from repro.core import ResCCLBackend
from repro.faults import (
    CollectiveCheckpoint,
    FaultInjector,
    FaultPlan,
    RecoveryImpossible,
    ReplanInfeasible,
    ReplanRequested,
    build_resume_plan,
    find_relay,
    make_policy,
    plan_edges,
)
from repro.faults.recovery import ResilientRunner
from repro.runtime import MB, SimulationDeadlock, Simulator, simulate
from repro.topology import Cluster


@pytest.fixture(scope="module")
def cluster():
    return Cluster(nodes=2, gpus_per_node=4)


@pytest.fixture(scope="module")
def plan(cluster):
    backend = ResCCLBackend(max_microbatches=4)
    return backend.plan(cluster, ring_allreduce(8), 16 * MB)


@pytest.fixture(scope="module")
def clean(plan):
    return simulate(plan)


@pytest.fixture(scope="module")
def single_node_plan():
    cluster = Cluster(nodes=1, gpus_per_node=4)
    backend = ResCCLBackend(max_microbatches=4)
    return backend.plan(cluster, ring_allreduce(4), 8 * MB)


def request_replan(plan, fault_plan) -> ReplanRequested:
    """Run to the first stall under the replan policy, return the request."""
    sim = Simulator(
        plan,
        injector=FaultInjector(fault_plan),
        recovery=make_policy("replan"),
    )
    with pytest.raises(ReplanRequested) as info:
        sim.run()
    return info.value


def mid_run_kill(plan, clean, edge="nv:out:0") -> FaultPlan:
    return FaultPlan().kill(edge, at_us=0.5 * clean.completion_time_us)


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------


class TestCheckpoint:
    def test_capture_snapshots_partial_progress(self, plan, clean):
        request = request_replan(plan, mid_run_kill(plan, clean))
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)
        assert ckpt.plan is plan
        assert ckpt.at_us == request.at_us
        assert 0.0 < ckpt.progress_fraction < 1.0
        assert ckpt.total_instances == plan.n_microbatches * len(plan.dag)
        assert len(ckpt.completed) + len(ckpt.residual_instances()) == (
            ckpt.total_instances
        )

    def test_completion_is_precedence_closed(self, plan, clean):
        request = request_replan(plan, mid_run_kill(plan, clean))
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)
        done = ckpt.completed_set
        for task_id, mb in ckpt.completed:
            for pred in plan.dag.preds[task_id]:
                assert (pred, mb) in done, (task_id, pred, mb)

    def test_possession_replays_delivered_chunks(self, plan, clean):
        request = request_replan(plan, mid_run_kill(plan, clean))
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)
        possession = ckpt.possession()
        assert set(possession) == set(range(plan.cluster.world_size))
        # Partial progress: someone holds a chunk beyond their own shard.
        contributions = sum(
            len(holders)
            for chunks in possession.values()
            for holders in chunks.values()
        )
        assert contributions > 0

    def test_advanced_folds_in_resume_deliveries(self, plan, clean):
        request = request_replan(plan, mid_run_kill(plan, clean))
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)
        residue = ckpt.residual_instances()
        newly = residue[: len(residue) // 2]
        later = ckpt.advanced(newly, ckpt.at_us + 100.0, ckpt.dead_edges)
        assert later.at_us == ckpt.at_us + 100.0
        assert len(later.completed) == len(ckpt.completed) + len(newly)
        assert not set(newly) & set(later.residual_instances())


# ----------------------------------------------------------------------
# Relay routing and resume-plan compilation
# ----------------------------------------------------------------------


class TestFindRelay:
    def test_detours_through_remote_node(self, cluster):
        # nv:out:0 dead: 0's intra-node egress is gone, but the NIC path
        # to node 1 survives, so some remote rank bridges 0 -> 1.
        relay = find_relay(cluster, 0, 1, {"nv:out:0"})
        assert relay is not None
        assert relay >= 4
        # Both legs avoid the dead edge.
        assert "nv:out:0" not in cluster.path(0, relay).edges
        assert "nv:out:0" not in cluster.path(relay, 1).edges

    def test_exclude_skips_claimed_relays(self, cluster):
        first = find_relay(cluster, 0, 1, {"nv:out:0"})
        second = find_relay(cluster, 0, 1, {"nv:out:0"}, exclude={first})
        assert second is not None
        assert second != first

    def test_single_node_partition_has_no_relay(self):
        cluster = Cluster(nodes=1, gpus_per_node=4)
        assert find_relay(cluster, 0, 1, {"nv:out:0"}) is None


class TestBuildResumePlan:
    def test_residue_compiles_with_metadata(self, plan, clean):
        request = request_replan(plan, mid_run_kill(plan, clean))
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)
        resume = build_resume_plan(plan, ckpt, sorted(request.dead_edges))
        assert resume.residual_instances == len(ckpt.residual_instances())
        assert resume.relay_instances > 0
        assert resume.plan.n_microbatches == 1
        assert resume.plan.name.endswith("+replan")
        # Metas align 1:1 with resume task ids and kinds are consistent.
        assert len(resume.metas) == len(resume.plan.dag)
        for task in resume.plan.dag.tasks:
            meta = resume.metas[task.task_id]
            assert (task.src, task.dst) == (meta.src, meta.dst)
            assert meta.kind in (DIRECT, RELAY_IN, RELAY_OUT)
        # Every residual instance is served by exactly one delivering task.
        delivered = [
            (meta.orig_task_id, meta.mb)
            for meta in resume.metas
            if meta.delivers
        ]
        assert len(delivered) == len(set(delivered))
        assert set(delivered) == set(ckpt.residual_instances())
        # No resume route crosses a dead edge.
        for task in resume.plan.dag.tasks:
            edges = resume.plan.cluster.path(task.src, task.dst).edges
            assert not set(edges) & set(request.dead_edges)

    def test_complete_checkpoint_has_nothing_to_replan(self, plan, clean):
        ckpt = CollectiveCheckpoint(
            plan=plan,
            at_us=clean.completion_time_us,
            completed=list(clean.completion_order),
            inflight_bytes={},
            dead_edges=(),
        )
        with pytest.raises(ReplanInfeasible, match="complete"):
            build_resume_plan(plan, ckpt, [])

    def test_partition_is_flagged(self, single_node_plan):
        clean = simulate(single_node_plan)
        edge = plan_edges(single_node_plan)[0]
        request = request_replan(
            single_node_plan, mid_run_kill(single_node_plan, clean, edge)
        )
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)
        with pytest.raises(ReplanInfeasible, match="partitioned") as info:
            build_resume_plan(single_node_plan, ckpt, sorted(request.dead_edges))
        assert info.value.partitioned


# ----------------------------------------------------------------------
# The semantic delivery verifier
# ----------------------------------------------------------------------


class TestDeliveryVerifier:
    def test_static_and_dynamic_orders_pass(self, plan, clean):
        verify_delivery(plan).raise_if_failed()
        report = verify_delivery(plan, order=clean.completion_order)
        report.raise_if_failed()
        assert report.applied == len(clean.completion_order)

    def test_catches_lost_instance(self, plan, clean):
        truncated = list(clean.completion_order)[:-1]
        report = verify_delivery(plan, order=truncated)
        assert not report.ok
        assert any("once" in e or "loss" in e for e in report.errors)
        with pytest.raises(DeliveryError):
            report.raise_if_failed()

    def test_catches_duplicate_application(self, plan, clean):
        # Set-semantics checkers are blind to this: a second reduction
        # contribution unions to the same set but double-counts the sum.
        doubled = list(clean.completion_order)
        doubled.append(doubled[len(doubled) // 2])
        report = verify_delivery(plan, order=doubled)
        assert not report.ok


# ----------------------------------------------------------------------
# End-to-end recovery rungs
# ----------------------------------------------------------------------


class TestReplanRecovery:
    def test_kill_replans_and_resumes(self, plan, clean):
        report = ResilientRunner(
            plan, mid_run_kill(plan, clean), policy=make_policy("replan")
        ).run()
        stats = report.fault_stats
        assert stats.replans == 1
        assert stats.fallbacks == 0
        assert report.plan_name.endswith("+replan")
        assert report.completion_time_us > clean.completion_time_us
        assert report.algo_bandwidth > 0.0
        kinds = [e.kind for e in report.trace]
        assert "recover:checkpoint" in kinds
        assert "recover:replan" in kinds

    def test_replan_beats_ring_fallback(self, plan, clean):
        fp = mid_run_kill(plan, clean)
        replan = ResilientRunner(
            plan, fp, policy=make_policy("replan")
        ).run()
        fallback = ResilientRunner(
            plan, fp, policy=make_policy("fallback")
        ).run()
        assert replan.completion_time_us < fallback.completion_time_us

    def test_flap_during_backoff_of_prior_retry(self, plan, clean):
        # First flap outlives several backoff rounds; the second lands
        # while those retries are still waiting.  The run must heal and
        # the stitched-free completion still verifies exactly-once.
        window = plan.config.watchdog_window_us
        fp = (
            FaultPlan()
            .flap("nv:out:0", at_us=200.0, down_us=3.0 * window)
            .flap("nv:out:1", at_us=200.0 + 1.25 * window, down_us=0.5 * window)
        )
        report = ResilientRunner(
            plan, fp, policy=make_policy("retry")
        ).run()
        stats = report.fault_stats
        assert stats.detected_stalls >= 1
        assert stats.recovered >= 1
        assert stats.replans == 0
        assert report.completion_time_us > clean.completion_time_us

    def test_second_kill_during_resume_forces_rereplanning(self, plan, clean):
        first_at = 0.5 * clean.completion_time_us
        first_kill = FaultPlan().kill("nv:out:0", at_us=first_at)
        # Rehearse the resume run fault-free to find a second victim that
        # is provably mid-flight during the resume: faulted and clean
        # runs are identical up to the second kill, so the chosen flow is
        # guaranteed to starve and force a re-replan.
        request = request_replan(plan, first_kill)
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)
        resume = build_resume_plan(plan, ckpt, sorted(request.dead_edges))
        rehearsal = Simulator(
            resume.plan, record_trace=True, start_at_us=ckpt.at_us
        ).run()
        second_edge, second_at = None, 0.0
        for event in sorted(rehearsal.trace, key=lambda e: e.start_us):
            if event.kind != "send" or event.task_id < 0:
                continue
            task = resume.plan.dag.task(event.task_id)
            for edge in resume.plan.cluster.path(task.src, task.dst).edges:
                if edge.startswith("nv:out:") and edge != "nv:out:0":
                    midpoint = 0.5 * (event.start_us + event.end_us)
                    if midpoint > ckpt.at_us:
                        second_edge, second_at = edge, midpoint
            if second_edge is not None:
                break
        assert second_edge is not None, "no NVLink send in the resume run"
        fp = (
            FaultPlan()
            .kill("nv:out:0", at_us=first_at)
            .kill(second_edge, at_us=second_at)
        )
        report = ResilientRunner(
            plan, fp, policy=make_policy("replan")
        ).run()
        stats = report.fault_stats
        assert stats.replans == 2
        assert stats.fallbacks == 0
        assert report.plan_name.endswith("+replan")
        assert report.completion_time_us > second_at

    def test_partition_without_failover_is_unrecoverable(
        self, single_node_plan
    ):
        clean = simulate(single_node_plan)
        edge = plan_edges(single_node_plan)[0]
        runner = ResilientRunner(
            single_node_plan,
            mid_run_kill(single_node_plan, clean, edge),
            policy=make_policy("replan"),
            fallback_capacity_factor=0.0,
        )
        with pytest.raises(RecoveryImpossible) as info:
            runner.run()
        assert isinstance(info.value, SimulationDeadlock)
        assert "no failover path" in str(info.value)

    def test_partition_with_failover_escalates_to_ring(
        self, single_node_plan
    ):
        clean = simulate(single_node_plan)
        edge = plan_edges(single_node_plan)[0]
        report = ResilientRunner(
            single_node_plan,
            mid_run_kill(single_node_plan, clean, edge),
            policy=make_policy("replan"),
            fallback_capacity_factor=0.25,
        ).run()
        assert report.fault_stats.fallbacks == 1
        assert report.plan_name.endswith("ring-fallback")


# ----------------------------------------------------------------------
# Policy vocabulary and CLI surface
# ----------------------------------------------------------------------


class TestPolicyNames:
    def test_make_policy_rejects_unknown_names(self):
        with pytest.raises(ValueError) as info:
            make_policy("reboot")
        message = str(info.value)
        for name in ("none", "retry", "fallback", "replan"):
            assert name in message

    def test_cli_rejects_unknown_recovery(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as info:
            main(
                ["run", "ring-allreduce", "--nodes", "1", "--gpus", "4",
                 "--buffer-mb", "8", "--mbs", "4",
                 "--inject", "link-kill", "--recovery", "reboot"]
            )
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_cli_partition_without_failover_exits_2(self, capsys):
        from repro.cli import main

        # Any killed edge partitions a single-node topology (all routes
        # are fixed NVLink pairs), and --failover-factor 0 removes the
        # ring escape hatch: a hard error, not a hang or a fake success.
        code = main(
            ["run", "ring-allreduce", "--nodes", "1", "--gpus", "4",
             "--buffer-mb", "8", "--mbs", "4",
             "--inject", "link-kill", "--recovery", "replan",
             "--failover-factor", "0"]
        )
        assert code == 2
        assert "deadlock" in capsys.readouterr().err

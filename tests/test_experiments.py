"""Tests for the programmatic experiments package (small configurations)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)
from repro.experiments import ablations, fig3, fig4, fig10, fig13, table1
from repro.experiments.base import make_backends, run_backend, a100_cluster
from repro.ir.task import Collective
from repro.runtime import MB


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        names = available_experiments()
        for required in (
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10a",
            "fig10b",
            "fig11",
            "table3",
            "fig12",
            "fig13",
        ):
            assert required in names

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_result_render(self):
        result = ExperimentResult(
            name="x",
            title="T",
            headers=["a"],
            rows=[["1"]],
            paper_note="n",
        )
        text = result.render()
        assert "T" in text and "paper: n" in text


class TestRunners:
    """Each runner at reduced scale — fast smoke coverage."""

    def test_fig4_small(self):
        result = fig4.run(tb_counts=(1, 4, 8))
        assert result.name == "fig4"
        by_count = dict(result.data)
        assert by_count[1] < by_count[4]
        assert by_count[8] < by_count[4]

    def test_fig3_small(self):
        result = fig3.run(sizes_mb=(64,), nodes=2, gpus=4)
        assert len(result.data) == 2  # AG + AR at one size

    def test_fig10a_small(self):
        result = fig10.run_phases(scales=((2, 4), (2, 8)))
        assert [world for world, _, _ in result.data] == [8, 16]

    def test_table1_small(self):
        result = table1.run(buffer_mb=32, scales=(2,))
        assert 16 in result.data
        values = result.data[16]
        assert all(0.0 < v <= 1.0 for v in values)

    def test_protocols_small(self):
        result = ablations.run_protocols(sizes_mb=(4, 64))
        assert result.data[("Simple", 64)] > result.data[("LL", 64)]

    def test_fig13_single_job(self):
        from repro.training import T5_MODELS, ParallelConfig

        jobs = [
            (
                T5_MODELS[0],
                ParallelConfig(tp=1, dp=8, batch_size=8),
                a100_cluster(2, 4),
            )
        ]
        result = fig13.run(jobs=jobs, max_microbatches=4)
        bws = result.data["T5 220M"]
        assert bws["ResCCL"] > 0


class TestBaseHelpers:
    def test_run_backend_requires_program_for_custom(self):
        backends = make_backends()
        with pytest.raises(ValueError, match="need an algorithm"):
            run_backend(backends["MSCCL"], a100_cluster(2, 4), 8 * MB)

    def test_run_backend_nccl_defaults_collective(self):
        backends = make_backends(max_microbatches=2)
        report = run_backend(
            backends["NCCL"],
            a100_cluster(2, 4),
            8 * MB,
            collective=Collective.ALLGATHER,
        )
        assert report.algo_bandwidth > 0

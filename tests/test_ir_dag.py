"""Tests for dependency-DAG construction (data + communication deps)."""

import pytest

from repro.ir import (
    Collective,
    CommType,
    CyclicDependencyError,
    Transfer,
    build_dag,
)
from repro.lang.builder import AlgoProgram
from repro.topology import multi_node, single_node


def _t(src, dst, step, chunk, op=CommType.RECV):
    return Transfer(src=src, dst=dst, step=step, chunk=chunk, op=op)


class TestDataDependencies:
    def test_read_after_write(self):
        # r0 -> r1 (chunk 0), then r1 forwards it: RAW on (r1, c0).
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(1, 2, 1, 0)], cluster)
        assert dag.preds[1] == {0}
        assert dag.succs[0] == {1}

    def test_write_after_write_serializes_rrc_chain(self):
        # Two reductions into (r2, c0) at different steps: WAW edge.
        cluster = single_node(4)
        dag = build_dag(
            [_t(0, 2, 0, 0, CommType.RRC), _t(1, 2, 1, 0, CommType.RRC)],
            cluster,
        )
        assert dag.preds[1] == {0}

    def test_write_after_read(self):
        # r1 reads its chunk 0 at step 0 (sends it), then a recv overwrites
        # (r1, c0) at step 1: WAR edge.
        cluster = single_node(4)
        dag = build_dag([_t(1, 2, 0, 0), _t(0, 1, 1, 0)], cluster)
        assert dag.preds[1] == {0}

    def test_same_step_no_dependency(self):
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(2, 3, 0, 2)], cluster)
        assert dag.edge_count == 0

    def test_different_chunks_independent(self):
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(1, 2, 1, 1)], cluster)
        assert dag.edge_count == 0

    def test_read_then_later_read_no_edge(self):
        # Two sends of the same chunk from the same rank: both reads.
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(0, 2, 1, 0)], cluster)
        assert dag.edge_count == 0

    def test_chain_depth(self):
        cluster = single_node(8)
        transfers = [_t(i, i + 1, i, 0) for i in range(7)]
        dag = build_dag(transfers, cluster)
        assert dag.critical_path_length() == 7


class TestCommDependencies:
    def test_intra_tasks_same_pair_share_link(self):
        cluster = multi_node(2, 4)
        dag = build_dag([_t(0, 1, 0, 0), _t(0, 1, 1, 1)], cluster)
        assert set(dag.comm_conflicts(0)) == {1}

    def test_intra_tasks_different_pairs_no_conflict(self):
        cluster = multi_node(2, 4)
        dag = build_dag([_t(0, 1, 0, 0), _t(0, 2, 0, 1)], cluster)
        assert dag.comm_conflicts(0) == []

    def test_inter_tasks_sharing_nic_conflict(self):
        cluster = multi_node(2, 8)
        # GPUs 0 and 1 share NIC 0; both send to node 1.
        dag = build_dag([_t(0, 8, 0, 0), _t(1, 9, 0, 1)], cluster)
        assert set(dag.comm_conflicts(0)) == {1}


class TestStructure:
    def test_roots(self):
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(1, 2, 1, 0), _t(2, 3, 0, 2)], cluster)
        assert set(dag.roots()) == {0, 2}

    def test_topological_order_valid(self):
        from repro.algorithms import hm_allreduce

        program = hm_allreduce(2, 4)
        dag = build_dag(program.transfers, multi_node(2, 4))
        order = dag.topological_order()
        position = {tid: i for i, tid in enumerate(order)}
        for producer, consumer in dag.edges():
            assert position[producer] < position[consumer]

    def test_cycle_detection(self):
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(1, 2, 1, 0)], cluster)
        dag.add_edge(1, 0)  # inject a cycle
        with pytest.raises(CyclicDependencyError):
            dag.topological_order()
        assert not dag.is_acyclic()

    def test_chunk_grouping(self):
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(1, 2, 1, 0), _t(2, 3, 0, 2)], cluster)
        assert set(dag.chunk_tasks[0]) == {0, 1}
        assert set(dag.chunk_tasks[2]) == {2}

    def test_networkx_export(self):
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(1, 2, 1, 0)], cluster)
        graph = dag.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph.has_edge(0, 1)
        assert graph.nodes[0]["task"].src == 0

    def test_all_builtin_algorithms_acyclic(self):
        from repro.algorithms import (
            double_binary_tree_allreduce,
            hm_allgather,
            hm_allreduce,
            hm_reducescatter,
            ring_allgather,
            ring_allreduce,
        )

        cluster = multi_node(2, 4)
        programs = [
            ring_allgather(8),
            ring_allreduce(8),
            double_binary_tree_allreduce(8),
            hm_allgather(2, 4),
            hm_reducescatter(2, 4),
            hm_allreduce(2, 4),
        ]
        for program in programs:
            dag = build_dag(program.transfers, cluster)
            assert dag.is_acyclic(), program.name


class TestTransferValidation:
    def test_self_transfer_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            _t(1, 1, 0, 0)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            Transfer(src=0, dst=1, step=-1, chunk=0, op=CommType.RECV)
        with pytest.raises(ValueError):
            Transfer(src=0, dst=1, step=0, chunk=-2, op=CommType.RECV)


class TestFusedEquivalence:
    """The fused single-pass build replays the reference edge sequence."""

    def _edge_log(self, transfers, cluster, fused):
        log = []
        dag = build_dag(transfers, cluster, fused=fused)
        # Reconstruct the DAG with a recording add_edge to capture order.
        from repro.ir.dag import (
            DependencyDAG,
            _hazard_edges_fused,
            _hazard_edges_reference,
        )

        recorder = DependencyDAG(dag.tasks)
        original = recorder.add_edge

        def record(producer, consumer):
            log.append((producer, consumer))
            original(producer, consumer)

        recorder.add_edge = record
        hazard = _hazard_edges_fused if fused else _hazard_edges_reference
        hazard(recorder, dag.tasks)
        return dag, log

    @pytest.mark.parametrize(
        "builder",
        ["ring-allreduce", "mesh-allreduce", "hm-allreduce", "tree-allreduce"],
    )
    def test_identical_edge_sequence(self, builder):
        from repro.algorithms import build_algorithm

        cluster = multi_node(2, 4)
        program = build_algorithm(builder, cluster)
        fused_dag, fused_log = self._edge_log(
            program.transfers, cluster, fused=True
        )
        ref_dag, ref_log = self._edge_log(
            program.transfers, cluster, fused=False
        )
        assert fused_log == ref_log
        assert fused_dag.preds == ref_dag.preds
        assert fused_dag.succs == ref_dag.succs

    def test_out_of_order_steps_still_identical(self):
        # Feed steps out of emission order so the fused path's per-slot
        # stable sort actually fires.
        cluster = single_node(4)
        transfers = [
            _t(0, 1, 5, 0),
            _t(1, 2, 1, 0),
            _t(0, 1, 1, 1, CommType.RRC),
            _t(2, 1, 3, 0, CommType.RRC),
            _t(1, 3, 5, 1),
        ]
        fused = build_dag(transfers, cluster, fused=True)
        reference = build_dag(transfers, cluster, fused=False)
        assert fused.preds == reference.preds
        assert fused.succs == reference.succs

    def test_topological_order_cached_and_invalidated(self):
        cluster = single_node(4)
        dag = build_dag([_t(0, 1, 0, 0), _t(1, 2, 1, 0)], cluster)
        first = dag.topological_order()
        assert dag.topological_order() == first
        dag.add_edge(0, 1)  # already present logically, but invalidates
        assert dag.topological_order() == first

    def test_import_does_not_pull_networkx(self):
        """repro.ir.dag must not import networkx at module load; only
        to_networkx() (and solver exports elsewhere) may."""
        import subprocess
        import sys

        code = (
            "import sys; import repro.ir.dag; import repro.core.hpds; "
            "import repro.core.tballoc; import repro.core.compiler; "
            "sys.exit(1 if 'networkx' in sys.modules else 0)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
        )
        assert proc.returncode == 0

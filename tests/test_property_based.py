"""Property-based tests (hypothesis) on core data structures and invariants.

Strategy: generate random-but-valid algorithm programs and cluster
shapes, then assert the invariants the system's correctness rests on:

* dependency DAGs are acyclic for any step-ordered program;
* both schedulers cover the DAG exactly once, respect dependencies, and
  never put two same-link tasks in one sub-pipeline;
* TB allocation assigns every task side exactly once and merged windows
  never overlap;
* ring/mesh/HM/tree algorithm generators are correct for arbitrary
  shapes;
* the parser round-trips arbitrary generated programs;
* micro-batch planning always reconstructs the buffer exactly.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    double_binary_tree_allreduce,
    hm_allgather,
    hm_allreduce,
    hm_reducescatter,
    mesh_allreduce,
    ring_allgather,
    ring_allreduce,
)
from repro.core import allocate_tbs, hpds_schedule, rr_schedule
from repro.ir.dag import build_dag
from repro.ir.task import Collective, CommType
from repro.lang.builder import AlgoProgram
from repro.lang.parser import parse_program
from repro.runtime.memory import verify_collective
from repro.runtime.plan import plan_microbatches
from repro.topology import Cluster

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

cluster_shapes = st.tuples(
    st.integers(min_value=1, max_value=4),  # nodes
    st.sampled_from([2, 4, 8]),  # gpus per node
)


@st.composite
def random_programs(draw):
    """A random valid AllGather-style program on a random cluster.

    Transfers are generated in step order with each rank's chunk
    ownership tracked, so the program is always executable (no rank
    sends data it does not hold).
    """
    nodes, gpus = draw(cluster_shapes)
    nranks = nodes * gpus
    program = AlgoProgram.create(
        nranks, Collective.ALLGATHER, name="random", gpus_per_node=gpus
    )
    holdings = {rank: {rank} for rank in range(nranks)}
    used = set()  # (src, dst, step, chunk) uniqueness
    written = set()  # (dst, chunk, step) single-writer rule
    n_transfers = draw(st.integers(min_value=1, max_value=24))
    for step in range(n_transfers):
        src = draw(st.integers(min_value=0, max_value=nranks - 1))
        chunk = draw(st.sampled_from(sorted(holdings[src])))
        dst = draw(
            st.integers(min_value=0, max_value=nranks - 2).map(
                lambda v, s=src: v if v < s else v + 1
            )
        )
        key = (src, dst, step, chunk)
        wkey = (dst, chunk, step)
        if key in used or wkey in written:
            continue
        used.add(key)
        written.add(wkey)
        program.transfer(src, dst, step, chunk, CommType.RECV)
        holdings[dst].add(chunk)
    return (nodes, gpus), program


# ----------------------------------------------------------------------
# DAG invariants
# ----------------------------------------------------------------------


class TestDagProperties:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_step_ordered_programs_are_acyclic(self, case):
        (nodes, gpus), program = case
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        dag = build_dag(program.transfers, cluster)
        assert dag.is_acyclic()

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_edges_respect_step_order(self, case):
        (nodes, gpus), program = case
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        dag = build_dag(program.transfers, cluster)
        for producer, consumer in dag.edges():
            assert dag.task(producer).step < dag.task(consumer).step


# ----------------------------------------------------------------------
# Scheduler invariants
# ----------------------------------------------------------------------


class TestSchedulerProperties:
    @given(random_programs(), st.sampled_from(["hpds", "rr"]))
    @settings(max_examples=60, deadline=None)
    def test_pipeline_invariants(self, case, scheduler_name):
        (nodes, gpus), program = case
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        dag = build_dag(program.transfers, cluster)
        schedule = hpds_schedule if scheduler_name == "hpds" else rr_schedule
        pipeline = schedule(dag)
        pipeline.check_all(dag)

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_allocation_covers_all_sides_once(self, case):
        (nodes, gpus), program = case
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        dag = build_dag(program.transfers, cluster)
        pipeline = hpds_schedule(dag)
        assignments = allocate_tbs(dag, pipeline)
        seen = set()
        for tb in assignments:
            previous_end = None
            for group in tb.groups:
                if previous_end is not None:
                    assert previous_end < group.window[0]
                previous_end = group.window[1]
            for side in tb.ordered_sides():
                assert side not in seen
                seen.add(side)
        assert len(seen) == 2 * len(dag)


# ----------------------------------------------------------------------
# Algorithm generators
# ----------------------------------------------------------------------


class TestAlgorithmProperties:
    @given(st.integers(min_value=2, max_value=24))
    @settings(max_examples=23, deadline=None)
    def test_ring_allgather_any_size(self, nranks):
        verify_collective(ring_allgather(nranks)).raise_if_failed()

    @given(st.integers(min_value=2, max_value=24))
    @settings(max_examples=23, deadline=None)
    def test_ring_allreduce_any_size(self, nranks):
        verify_collective(ring_allreduce(nranks)).raise_if_failed()

    @given(st.integers(min_value=2, max_value=24))
    @settings(max_examples=23, deadline=None)
    def test_tree_allreduce_any_size(self, nranks):
        verify_collective(double_binary_tree_allreduce(nranks)).raise_if_failed()

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=15, deadline=None)
    def test_mesh_allreduce_any_size(self, nranks):
        verify_collective(mesh_allreduce(nranks)).raise_if_failed()

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_hm_algorithms_any_shape(self, nnodes, gpus):
        verify_collective(hm_allgather(nnodes, gpus)).raise_if_failed()
        verify_collective(hm_reducescatter(nnodes, gpus)).raise_if_failed()
        verify_collective(hm_allreduce(nnodes, gpus)).raise_if_failed()


# ----------------------------------------------------------------------
# Parser round-trip
# ----------------------------------------------------------------------


class TestParserProperties:
    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_source_round_trip(self, case):
        _, program = case
        reparsed = parse_program(program.to_source())
        assert reparsed.transfers == program.transfers
        assert reparsed.header.nranks == program.header.nranks


# ----------------------------------------------------------------------
# Plan arithmetic
# ----------------------------------------------------------------------


class TestPlanProperties:
    @given(
        st.floats(min_value=1024.0, max_value=float(1 << 34)),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=100, deadline=None)
    def test_microbatch_reconstruction(self, buffer_bytes, nchunks, max_mb):
        n_mb, chunk = plan_microbatches(
            buffer_bytes, nchunks, max_microbatches=max_mb
        )
        assert 1 <= n_mb <= max_mb
        assert math.isclose(n_mb * nchunks * chunk, buffer_bytes, rel_tol=1e-9)


# ----------------------------------------------------------------------
# End-to-end: random programs through the full ResCCL pipeline
# ----------------------------------------------------------------------


class TestEndToEndProperties:
    @given(random_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_program_executes_and_replays(self, case):
        """Compile, simulate, and symbolically replay a random program.

        Three invariants at once: plan construction never deadlocks the
        runtime, every invocation completes, and the dynamic completion
        order respects all data dependencies (the replay re-establishes
        a coherent buffer state for every micro-batch).
        """
        from collections import defaultdict

        from repro.core import ResCCLBackend
        from repro.runtime.memory import execute_sequential
        from repro.runtime.simulator import simulate

        (nodes, gpus), program = case
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        plan = ResCCLBackend(max_microbatches=2).plan(
            cluster, program, 4 * 1024 * 1024.0
        )
        report = simulate(plan)
        assert (
            len(report.completion_order)
            == len(plan.dag) * plan.n_microbatches
        )
        per_mb = defaultdict(list)
        for task_id, mb in report.completion_order:
            per_mb[mb].append(task_id)
        for order in per_mb.values():
            _, errors = execute_sequential(program, order)
            assert not errors, errors[:3]

    @given(random_programs())
    @settings(max_examples=15, deadline=None)
    def test_backends_agree_on_total_bytes(self, case):
        """MSCCL and ResCCL plans of one program move identical volume."""
        from repro.baselines import MSCCLBackend
        from repro.core import ResCCLBackend

        (nodes, gpus), program = case
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        buffer_bytes = 8 * 1024 * 1024.0
        msccl = MSCCLBackend(max_microbatches=2).plan(
            cluster, program, buffer_bytes
        )
        resccl = ResCCLBackend(max_microbatches=2).plan(
            cluster, program, buffer_bytes
        )
        assert msccl.total_bytes == pytest.approx(resccl.total_bytes)
        assert msccl.total_invocations == resccl.total_invocations

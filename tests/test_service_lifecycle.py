"""Crash-only service lifecycle: journal, drain, prewarm, failover.

Layered like :mod:`repro.service` itself: the write-ahead journal, the
prewarm manifest, and the lifecycle state machine are unit-tested in
process; the daemon's boot replay / drain / hot restart are exercised
end-to-end over real HTTP; :class:`ServiceClientPool` failover and the
client's 429 pacing run against real daemons and scripted mock sockets.
"""

import contextlib
import json
import socket
import threading
import time

import pytest

from repro.service import (
    STATE_DRAINING,
    STATE_READY,
    JournalBusy,
    JournalEntry,
    LifecycleManager,
    PrewarmManifest,
    RequestJournal,
    ServiceClient,
    ServiceClientPool,
    ServiceConfig,
    ServiceDaemon,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
    parse_request,
)
from repro.service.client import _BACKOFF_BASE_S, _BACKOFF_CAP_S
from repro.service.journal import JOURNAL_VERSION
from repro.service.lifecycle import PREWARM_FILE, RECORDER_FILE

FAST = {"algorithm": "ring-allreduce", "nodes": 1, "gpus": 8,
        "buffer_mb": 16.0, "mbs": 4}


def _fast_payload():
    return parse_request("simulate", dict(FAST)).to_payload()


# ----------------------------------------------------------------------
# RequestJournal
# ----------------------------------------------------------------------


class TestRequestJournal:
    def test_append_complete_recover_round_trip(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.append(JournalEntry(
                entry_id="a", key="k1", op="simulate",
                payload={"x": 1}, deadline_wall=time.time() + 60,
                trace_id="trace-a",
            ))
            journal.append(JournalEntry(
                entry_id="b", key="k2", op="compile", payload={"x": 2},
            ))
            journal.complete("a", 200, digest="deadbeef")
            assert journal.stats.appends == 2
            assert journal.stats.completes == 1
            assert journal.stats.fsyncs == 3

        with RequestJournal(tmp_path) as journal:
            incomplete = journal.recover()
            assert [e.entry_id for e in incomplete] == ["b"]
            assert incomplete[0].op == "compile"
            assert incomplete[0].payload == {"x": 2}
            assert incomplete[0].deadline_wall is None
            # Recovery compacted: only the unmatched begin survives.
            records = journal.records()
            assert len(records) == 1
            assert records[0]["kind"] == "begin"
            assert records[0]["id"] == "b"

    def test_torn_tail_is_tolerated_and_compacted_away(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.append(JournalEntry(
                entry_id="whole", key="k", op="simulate", payload={}
            ))
        # A kill -9 mid-append leaves a truncated trailing line.
        path = tmp_path / "journal.jsonl"
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "kind": "begin", "id": "torn-e')

        with RequestJournal(tmp_path) as journal:
            incomplete = journal.recover()
            assert [e.entry_id for e in incomplete] == ["whole"]
            assert journal.stats.torn_records == 1
            # The torn bytes are gone after compaction.
            assert all(r["id"] == "whole" for r in journal.records())

    def test_unknown_version_records_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"v": JOURNAL_VERSION + 1, "kind": "begin",
                        "id": "future", "payload": {}}) + "\n",
            encoding="utf-8",
        )
        with RequestJournal(tmp_path) as journal:
            assert journal.recover() == []

    def test_expired_deadline(self):
        entry = JournalEntry(entry_id="e", key="k", op="simulate",
                             payload={}, deadline_wall=time.time() - 1)
        assert entry.expired()
        entry.deadline_wall = time.time() + 60
        assert not entry.expired()
        entry.deadline_wall = None  # no deadline never expires
        assert not entry.expired()

    def test_second_owner_fails_fast_with_busy(self, tmp_path):
        journal = RequestJournal(tmp_path)
        try:
            with pytest.raises(JournalBusy):
                RequestJournal(tmp_path)
        finally:
            journal.close()
        # Releasing the flock hands the dir to the next owner.
        RequestJournal(tmp_path).close()

    def test_dead_owner_releases_the_dir_live_owner_excludes(self, tmp_path):
        """The lock must be held by the daemon *process*, not by fds its
        forked workers inherit: a live owner in another process excludes
        us, and a SIGKILLed owner releases instantly (a flock here would
        survive in orphaned children and wedge every restart)."""
        import os
        import subprocess
        import sys

        import repro

        script = (
            "import sys, time\n"
            "from repro.service.journal import RequestJournal\n"
            "journal = RequestJournal(sys.argv[1])\n"
            "print('locked', flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            __import__("pathlib").Path(repro.__file__).parent.parent
        ) + os.pathsep + env.get("PYTHONPATH", "")
        owner = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env, stdout=subprocess.PIPE,
        )
        try:
            assert owner.stdout.readline().strip() == b"locked"
            with pytest.raises(JournalBusy):
                RequestJournal(tmp_path)
        finally:
            owner.kill()
            owner.wait(timeout=30)
        RequestJournal(tmp_path).close()  # died with the owner process

    def test_write_failure_degrades_to_counter_not_exception(self, tmp_path):
        journal = RequestJournal(tmp_path)
        try:
            journal.recover()  # opens the append handle
            journal._fh.close()  # simulate a yanked file handle
            journal.append(JournalEntry(
                entry_id="x", key="k", op="simulate", payload={}
            ))
            assert journal.stats.errors == 1
        finally:
            journal.close()


# ----------------------------------------------------------------------
# PrewarmManifest + LifecycleManager
# ----------------------------------------------------------------------


class TestPrewarmManifest:
    def test_hottest_ranks_by_hits_then_key(self):
        manifest = PrewarmManifest(limit=2)
        manifest.touch("b", {"p": "b"})
        manifest.touch("a", {"p": "a1"})
        manifest.touch("a", {"p": "a2"})  # latest payload wins
        manifest.touch("c", {"p": "c"})
        top = manifest.hottest()
        assert [e["key"] for e in top] == ["a", "b"]  # limit=2, tie by key
        assert top[0] == {"key": "a", "hits": 2, "payload": {"p": "a2"}}

    def test_save_load_round_trip(self, tmp_path):
        manifest = PrewarmManifest(limit=8)
        manifest.touch("hot", {"op": "compile"})
        manifest.save(tmp_path)
        loaded = PrewarmManifest.load(tmp_path)
        assert loaded == [{"key": "hot", "hits": 1,
                           "payload": {"op": "compile"}}]

    def test_load_tolerates_missing_and_corrupt(self, tmp_path):
        assert PrewarmManifest.load(tmp_path) == []
        (tmp_path / PREWARM_FILE).write_text("{not json", encoding="utf-8")
        assert PrewarmManifest.load(tmp_path) == []
        (tmp_path / PREWARM_FILE).write_text(
            json.dumps({"v": 999, "entries": [{"key": "x", "payload": {}}]}),
            encoding="utf-8",
        )
        assert PrewarmManifest.load(tmp_path) == []

    def test_zero_limit_disables_tracking(self):
        manifest = PrewarmManifest(limit=0)
        manifest.touch("k", {})
        assert len(manifest) == 0


class TestLifecycleManager:
    def test_state_machine_order(self):
        lifecycle = LifecycleManager()
        assert not lifecycle.is_ready()
        lifecycle.mark_ready()
        assert lifecycle.state == STATE_READY
        assert lifecycle.time_to_ready_ms is not None
        assert lifecycle.begin_drain() is True
        assert lifecycle.state == STATE_DRAINING
        assert lifecycle.begin_drain() is False  # already draining
        lifecycle.mark_stopped()
        assert lifecycle.begin_drain() is False

    def test_drain_from_booting_unblocks_ready_waiters(self):
        lifecycle = LifecycleManager()
        assert lifecycle.begin_drain() is True
        assert lifecycle.ready_event.is_set()  # stop() must not hang
        assert lifecycle.time_to_ready_ms is None  # never became ready


# ----------------------------------------------------------------------
# Daemon: journal + drain + hot restart (real HTTP)
# ----------------------------------------------------------------------


def _daemon(tmp_path, **overrides):
    config = dict(
        port=0, workers=1, queue_depth=8,
        cache_dir=str(tmp_path / "cache"),
        journal_dir=str(tmp_path / "journal"),
        default_deadline_ms=60_000.0,
    )
    config.update(overrides)
    return ServiceDaemon(ServiceConfig(**config))


def _journal_records(tmp_path):
    path = tmp_path / "journal" / "journal.jsonl"
    return [json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()]


def _wait_for(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestDaemonJournal:
    def test_request_is_journaled_begin_then_end_with_digest(self, tmp_path):
        daemon = _daemon(tmp_path).start()
        try:
            with ServiceClient("127.0.0.1", daemon.port) as client:
                reply = client.simulate(**FAST)
            # The end mark is written off the event loop; wait it out.
            assert _wait_for(lambda: daemon.journal.stats.completes >= 1)
            records = _journal_records(tmp_path)
            assert [r["kind"] for r in records] == ["begin", "end"]
            begin, end = records
            assert begin["op"] == "simulate"
            assert begin["deadline_wall"] > time.time()
            assert begin["trace_id"] == reply["trace_id"]
            assert end["id"] == begin["id"]
            assert end["status"] == 200
            assert end["digest"] == reply["result_digest"]
        finally:
            daemon.stop()

    def test_two_daemons_on_one_journal_dir_fail_fast(self, tmp_path):
        daemon = _daemon(tmp_path).start()
        try:
            with pytest.raises(JournalBusy):
                _daemon(tmp_path).start()
        finally:
            daemon.stop()

    def test_incomplete_entry_is_replayed_exactly_once(self, tmp_path):
        # A crash after the write-ahead append but before the reply:
        # the journal holds a begin with no end.
        with RequestJournal(tmp_path / "journal") as journal:
            journal.append(JournalEntry(
                entry_id="crashed-1", key="k", op="simulate",
                payload=_fast_payload(),
                deadline_wall=time.time() + 120,
            ))

        daemon = _daemon(tmp_path).start()  # blocks through boot replay
        try:
            assert daemon.lifecycle.replayed == 1
            records = _journal_records(tmp_path)
            ends = [r for r in records if r["kind"] == "end"]
            assert len(ends) == 1 and ends[0]["id"] == "crashed-1"
            assert ends[0]["status"] == 200
            # Digest-verify the replay against a live execution of the
            # same request (content-addressed, so they must agree).
            with ServiceClient("127.0.0.1", daemon.port) as client:
                reply = client.simulate(**FAST)
                assert ends[0]["digest"] == reply["result_digest"]
                report = client.debug_lifecycle()
            assert report["state"] == "ready"
            assert report["journal_replayed"] == 1
            assert report["journal"]["appends"] >= 1
        finally:
            daemon.stop()

        # Exactly once: a second restart finds nothing to replay.
        daemon2 = _daemon(tmp_path).start()
        try:
            assert daemon2.lifecycle.replayed == 0
        finally:
            daemon2.stop()

    def test_expired_entry_is_dropped_not_replayed(self, tmp_path):
        with RequestJournal(tmp_path / "journal") as journal:
            journal.append(JournalEntry(
                entry_id="stale-1", key="k", op="simulate",
                payload=_fast_payload(),
                deadline_wall=time.time() - 5,  # budget already spent
            ))
        daemon = _daemon(tmp_path).start()
        try:
            assert daemon.lifecycle.replayed == 0
            assert daemon.lifecycle.dropped_expired == 1
            ends = [r for r in _journal_records(tmp_path)
                    if r["kind"] == "end"]
            assert ends and ends[0]["status"] == "dropped_expired"
        finally:
            daemon.stop()


class TestDrainAndHotRestart:
    def test_drain_refuses_new_work_but_stays_alive(self, tmp_path):
        daemon = _daemon(tmp_path).start()
        try:
            with ServiceClient("127.0.0.1", daemon.port) as client:
                client.simulate(**FAST)
                assert daemon.drain(grace_ms=5_000) is True
                assert daemon.lifecycle.state == STATE_DRAINING
                # Readiness flips 503 (load balancer: stop sending) ...
                assert client.readyz()["http_status"] == 503
                assert client.readyz()["lifecycle"] == "draining"
                # ... liveness stays green (don't kill a draining pod) ...
                assert client.healthz()["http_status"] == 200
                # ... and new work is refused with a failover hint.
                with pytest.raises(ServiceError) as excinfo:
                    client.simulate(**FAST)
                assert excinfo.value.status == 503
                assert "draining" in str(excinfo.value)
            # Drain persisted the warm state for the next boot.
            assert (tmp_path / "journal" / PREWARM_FILE).exists()
            assert (tmp_path / "journal" / RECORDER_FILE).exists()
        finally:
            daemon.stop()

    def test_drain_is_idempotent(self, tmp_path):
        daemon = _daemon(tmp_path).start()
        try:
            assert daemon.drain(grace_ms=2_000) is True
            assert daemon.drain(grace_ms=2_000) is True  # reports, no redo
        finally:
            daemon.stop()

    def test_hot_restart_prewarms_hottest_keys(self, tmp_path):
        daemon = _daemon(tmp_path).start()
        try:
            with ServiceClient("127.0.0.1", daemon.port) as client:
                cold = client.simulate(**FAST)
                assert cold["result"]["cache_hit"] is False
                client.simulate(**FAST)
            daemon.drain(grace_ms=5_000)
        finally:
            daemon.stop()
        manifest = PrewarmManifest.load(tmp_path / "journal")
        assert len(manifest) == 1
        assert manifest[0]["hits"] >= 2
        assert manifest[0]["payload"]["op"] == "compile"
        assert "deadline_ms" not in manifest[0]["payload"]

        daemon2 = _daemon(tmp_path).start()  # replays the manifest
        try:
            assert daemon2.lifecycle.prewarmed == 1
            with ServiceClient("127.0.0.1", daemon2.port) as client:
                # First post-restart request hits the prewarmed cache.
                warm = client.simulate(**FAST)
                assert warm["result"]["cache_hit"] is True
                assert warm["result_digest"] == cold["result_digest"]
                report = client.debug_lifecycle()
            assert report["prewarmed"] == 1
            assert report["time_to_ready_ms"] is not None
        finally:
            daemon2.stop()

    def test_lifecycle_metrics_exported(self, tmp_path):
        daemon = _daemon(tmp_path).start()
        try:
            with ServiceClient("127.0.0.1", daemon.port) as client:
                client.simulate(**FAST)
                assert _wait_for(
                    lambda: daemon.journal.stats.completes >= 1
                )
                text = client.metrics()
            assert "service_lifecycle_state 1" in text  # READY
            assert "service_journal_appends_total 1" in text
            assert "service_lifecycle_time_to_ready_ms" in text
            assert "service_open_requests" in text
        finally:
            daemon.stop()


# ----------------------------------------------------------------------
# Scripted mock replicas (raw sockets) for client/pool edge cases
# ----------------------------------------------------------------------


def _read_http_request(conn):
    """Read one HTTP request off a socket; None on clean close."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(65536)
        if not chunk:
            return None
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value)
    while len(body) < length:
        chunk = conn.recv(65536)
        if not chunk:
            break
        body += chunk
    return head, body


def _http_response(status, payload, extra_headers=()):
    body = json.dumps(payload).encode("utf-8")
    lines = [f"HTTP/1.1 {status} X", "Content-Type: application/json",
             f"Content-Length: {len(body)}", "Connection: keep-alive"]
    lines.extend(extra_headers)
    return "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body


@contextlib.contextmanager
def _mock_replica(handler):
    """A raw TCP listener; ``handler(conn)`` scripts each connection."""
    srv = socket.socket()
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind(("127.0.0.1", 0))
    srv.listen(16)
    srv.settimeout(0.1)
    port = srv.getsockname()[1]
    stop = threading.Event()

    def loop():
        while not stop.is_set():
            try:
                conn, _ = srv.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(10.0)
            try:
                handler(conn, stop)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    try:
        yield port
    finally:
        stop.set()
        thread.join(timeout=5.0)
        srv.close()


def _free_dead_port():
    """A port with nothing listening (connection refused)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# ----------------------------------------------------------------------
# ServiceClient: 429 pacing + reconnect backoff (satellite 2)
# ----------------------------------------------------------------------


class TestClientOverloadPacing:
    def test_retry_after_header_is_honored(self):
        hits = []

        def handler(conn, stop):
            while not stop.is_set():
                request = _read_http_request(conn)
                if request is None:
                    return
                hits.append(time.monotonic())
                if len(hits) == 1:
                    # Header only — no retry_after_s in the body, so the
                    # client must take the pacing from the header.
                    conn.sendall(_http_response(
                        429, {"error": "busy"}, ["Retry-After: 0.2"]))
                else:
                    conn.sendall(_http_response(200, {"ok": True}))

        with _mock_replica(handler) as port:
            client = ServiceClient("127.0.0.1", port, overload_retries=1)
            with client:
                reply = client.request("simulate", algorithm="x")
            assert reply["ok"] is True
            assert len(hits) == 2
            assert hits[1] - hits[0] >= 0.2  # slept the hinted pause

    def test_retry_wait_is_capped_by_deadline_budget(self):
        def handler(conn, stop):
            while not stop.is_set():
                if _read_http_request(conn) is None:
                    return
                conn.sendall(_http_response(
                    429, {"error": "busy"}, ["Retry-After: 5"]))

        with _mock_replica(handler) as port:
            client = ServiceClient("127.0.0.1", port, overload_retries=3)
            started = time.monotonic()
            with client, pytest.raises(ServiceOverloaded):
                # Sleeping 5s would blow the 100ms budget: surface the
                # overload immediately instead of burning it asleep.
                client.request("simulate", algorithm="x", deadline_ms=100)
            assert time.monotonic() - started < 1.0

    def test_reconnect_backoff_is_bounded_decorrelated_jitter(
        self, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        client = ServiceClient("127.0.0.1", 1)
        for _ in range(25):
            client._reconnect_pause()
        assert all(
            _BACKOFF_BASE_S <= pause <= _BACKOFF_CAP_S for pause in sleeps
        )
        # The curve actually grows away from the base instead of
        # retrying in lockstep.
        assert max(sleeps) > _BACKOFF_BASE_S
        assert client._backoff_s <= _BACKOFF_CAP_S


# ----------------------------------------------------------------------
# ServiceClientPool: failover, circuits, hedging (tentpole part 3)
# ----------------------------------------------------------------------


@pytest.fixture(scope="class")
def live_daemon(tmp_path_factory):
    base = tmp_path_factory.mktemp("pool-live")
    daemon = ServiceDaemon(ServiceConfig(
        port=0, workers=1, queue_depth=8, cache_dir=str(base / "cache"),
        default_deadline_ms=60_000.0,
    ))
    daemon.start()
    yield daemon
    daemon.stop()


class TestServiceClientPool:
    def test_requires_at_least_one_replica(self):
        with pytest.raises(ValueError):
            ServiceClientPool([])

    def test_fails_over_a_dead_replica_with_zero_client_errors(
        self, live_daemon
    ):
        dead = _free_dead_port()
        with ServiceClientPool(
            [("127.0.0.1", dead), ("127.0.0.1", live_daemon.port)],
            failure_threshold=1, cooldown_s=5.0,
        ) as pool:
            for _ in range(4):  # idempotent requests: 0% errors
                reply = pool.simulate(**FAST)
                assert reply["ok"] is True
            assert pool.failovers >= 1
            states = pool.replica_states()
            assert states[0]["circuit"] == "open"  # dead replica benched
            assert states[1]["circuit"] == "closed"
            # Once the circuit is open the dead replica is skipped, so
            # later calls stop paying the connect-refused round trip.
            failovers_before = pool.failovers
            pool.simulate(**FAST)
            assert pool.failovers == failovers_before

    def test_fails_over_a_draining_replica(self, live_daemon, tmp_path):
        draining = _daemon(tmp_path).start()
        try:
            draining.drain(grace_ms=1_000)
            with ServiceClientPool(
                [("127.0.0.1", draining.port),
                 ("127.0.0.1", live_daemon.port)],
            ) as pool:
                reply = pool.simulate(**FAST)
                assert reply["ok"] is True
                assert pool.failovers >= 1
                # GETs fail over too: readiness comes from the live one.
                assert pool.readyz()["http_status"] == 200
        finally:
            draining.stop()

    def test_delivered_post_is_never_failed_over(self):
        """A POST that reached a replica but lost its response must
        surface, not resend: the replica may already have executed it."""
        second_replica_posts = []

        def black_hole(conn, stop):
            # Read the full request, then drop the connection without
            # replying: delivered=True, response lost.
            _read_http_request(conn)

        def counting(conn, stop):
            while not stop.is_set():
                request = _read_http_request(conn)
                if request is None:
                    return
                second_replica_posts.append(request)
                conn.sendall(_http_response(200, {"ok": True}))

        with _mock_replica(black_hole) as p1, _mock_replica(counting) as p2:
            with ServiceClientPool(
                [("127.0.0.1", p1), ("127.0.0.1", p2)]
            ) as pool:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    pool.request("simulate", algorithm="x")
                assert excinfo.value.delivered is True
            assert second_replica_posts == []  # never resent elsewhere

    def test_undelivered_post_fails_over_safely(self, live_daemon):
        """Connection refused = bytes never arrived: resending is safe."""
        dead = _free_dead_port()
        with ServiceClientPool(
            [("127.0.0.1", dead), ("127.0.0.1", live_daemon.port)]
        ) as pool:
            assert pool.simulate(**FAST)["ok"] is True
            assert pool.failovers == 1

    def test_hedged_get_races_a_stalled_replica(self):
        def stalled(conn, stop):
            _read_http_request(conn)
            stop.wait(5.0)  # hold the response hostage

        def prompt(conn, stop):
            while not stop.is_set():
                if _read_http_request(conn) is None:
                    return
                conn.sendall(_http_response(200, {"status": "prompt"}))

        with _mock_replica(stalled) as p1, _mock_replica(prompt) as p2:
            with ServiceClientPool(
                [("127.0.0.1", p1), ("127.0.0.1", p2)],
                timeout_s=10.0, hedge_after_s=0.05,
            ) as pool:
                started = time.monotonic()
                reply = pool.healthz()
                elapsed = time.monotonic() - started
            assert reply["status"] == "prompt"  # the hedge won
            assert pool.hedges == 1
            assert elapsed < 5.0  # did not wait out the stalled replica

    def test_posts_are_never_hedged(self):
        arrivals = {"first": 0, "second": 0}

        def make_handler(name):
            def handler(conn, stop):
                while not stop.is_set():
                    if _read_http_request(conn) is None:
                        return
                    arrivals[name] += 1
                    conn.sendall(_http_response(
                        200, {"ok": True, "replica": name}))
            return handler

        with _mock_replica(make_handler("first")) as p1, \
                _mock_replica(make_handler("second")) as p2:
            with ServiceClientPool(
                [("127.0.0.1", p1), ("127.0.0.1", p2)],
                hedge_after_s=0.0,  # hedge GETs as aggressively as possible
            ) as pool:
                reply = pool.request("simulate", algorithm="x")
            assert reply["replica"] == "first"
        # Even with hedging armed, the POST reached exactly one replica.
        assert arrivals == {"first": 1, "second": 0}

    def test_pool_overload_paces_with_the_smallest_hint(self):
        hits = {"n": 0}

        def overloaded_then_ok(conn, stop):
            while not stop.is_set():
                if _read_http_request(conn) is None:
                    return
                hits["n"] += 1
                if hits["n"] == 1:
                    conn.sendall(_http_response(
                        429, {"error": "busy", "retry_after_s": 0.05},
                        ["Retry-After: 1"]))
                else:
                    conn.sendall(_http_response(200, {"ok": True}))

        with _mock_replica(overloaded_then_ok) as port:
            with ServiceClientPool(
                [("127.0.0.1", port)], overload_retries=1
            ) as pool:
                reply = pool.request("simulate", algorithm="x")
            assert reply["ok"] is True
            assert hits["n"] == 2

    def test_successful_exchange_resets_the_backoff_curve(
        self, live_daemon
    ):
        with ServiceClient("127.0.0.1", live_daemon.port) as client:
            client._backoff_s = _BACKOFF_CAP_S  # as if it just struggled
            client.healthz()
            assert client._backoff_s == _BACKOFF_BASE_S

"""Focused tests of HPDS internals: priorities, urgency, link arbitration."""

import pytest

from repro.core.hpds import _ChunkQueue, _priority_key, hpds_schedule
from repro.ir.dag import build_dag
from repro.ir.task import Collective, CommType
from repro.lang.builder import AlgoProgram
from repro.topology import multi_node, single_node


def program_with(nranks, transfers, gpus_per_node=8):
    program = AlgoProgram.create(
        nranks, Collective.ALLGATHER, gpus_per_node=gpus_per_node
    )
    for src, dst, step, chunk, op in transfers:
        program.transfer(src, dst, step, chunk, op)
    return program


class TestChunkQueue:
    def test_priority_by_service_count(self):
        queue = _ChunkQueue([0, 1, 2])
        flags = {0: True, 1: True, 2: True}
        assert queue.highest_with_flag(flags) == 0  # id tie-break
        queue.decrease(0)
        assert queue.highest_with_flag(flags) == 1
        queue.decrease(1)
        queue.decrease(2)
        assert queue.highest_with_flag(flags) == 0  # round completed

    def test_urgency_breaks_service_ties(self):
        queue = _ChunkQueue([0, 1])
        queue.set_urgency(1, 5)
        assert queue.highest_with_flag({0: True, 1: True}) == 1

    def test_service_count_dominates_urgency(self):
        queue = _ChunkQueue([0, 1])
        queue.set_urgency(0, 100)
        queue.decrease(0)
        assert queue.highest_with_flag({0: True, 1: True}) == 1

    def test_flags_filter(self):
        queue = _ChunkQueue([0, 1, 2])
        assert queue.highest_with_flag({0: False, 1: False, 2: True}) == 2
        assert queue.highest_with_flag({0: False, 1: False, 2: False}) == -1

    def test_priority_key_ordering(self):
        """The single priority definition both modes share: min-key over
        (served, -urgency, chunk)."""
        # Fewer services wins regardless of urgency...
        assert _priority_key(0, 0, 9) < _priority_key(1, 100, 0)
        # ...then higher urgency...
        assert _priority_key(1, 5, 9) < _priority_key(1, 2, 0)
        # ...then lower chunk id.
        assert _priority_key(1, 5, 3) < _priority_key(1, 5, 4)


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "reference"])
class TestLinkArbitration:
    def test_earlier_step_task_claims_contested_link_first(self, indexed):
        """Two ready tasks of different chunks share one link; the
        earlier-step one must come first in the schedule."""
        cluster = single_node(4)
        # Chunk 1 at rank 0 (received at step 0) is forwarded at step 5;
        # chunk 0 goes over the same 0->2 link at step 1.
        program = program_with(
            4,
            [
                (1, 0, 0, 1, CommType.RECV),  # rank 0 acquires chunk 1
                (0, 2, 1, 0, CommType.RECV),  # early task on link 0->2
                (0, 2, 5, 1, CommType.RECV),  # late task, same link
            ],
            gpus_per_node=4,
        )
        dag = build_dag(program.transfers, cluster)
        pipeline = hpds_schedule(dag, indexed=indexed)
        early = next(
            t.task_id for t in dag.tasks if t.step == 1 and t.src == 0
        )
        late = next(
            t.task_id for t in dag.tasks if t.step == 5 and t.src == 0
        )
        assert pipeline.order_key(early) < pipeline.order_key(late)

    def test_urgent_chains_prioritized(self, indexed):
        """Among equally-served chunks, the one heading a longer chain
        is scheduled first."""
        cluster = single_node(8)
        transfers = [(0, 1, 0, 0, CommType.RECV)]  # chunk 0: single hop
        # Chunk 7: a long forwarding chain 7 -> 6 -> 5 -> ... (chain of 5).
        for hop in range(5):
            transfers.append(
                (7 - hop, 6 - hop, hop, 7, CommType.RECV)
            )
        program = program_with(8, transfers)
        dag = build_dag(program.transfers, cluster)
        pipeline = hpds_schedule(dag, indexed=indexed)
        chain_root = next(
            t.task_id for t in dag.tasks if t.chunk == 7 and t.step == 0
        )
        single_hop = next(
            t.task_id for t in dag.tasks if t.chunk == 0
        )
        # The chain head outranks the isolated hop in the first wavefront.
        assert pipeline.order_key(chain_root) < pipeline.order_key(single_hop)

    def test_deferred_task_scheduled_in_later_subpipeline(self, indexed):
        """The link guard defers, never drops: everything still lands."""
        cluster = multi_node(2, 4)
        from repro.algorithms import hm_allreduce

        dag = build_dag(hm_allreduce(2, 4).transfers, cluster)
        pipeline = hpds_schedule(dag, indexed=indexed)
        pipeline.check_complete(dag)

    def test_inter_link_step_order_preserved(self, indexed):
        """On a shared NIC link, scheduled order follows step order for
        ready tasks (the Figure-5 inversion bug regression test)."""
        cluster = multi_node(2, 4)
        from repro.algorithms import hm_allreduce

        dag = build_dag(hm_allreduce(2, 4).transfers, cluster)
        pipeline = hpds_schedule(dag, indexed=indexed)
        for link, task_ids in dag.link_tasks.items():
            if not link.startswith("nic"):
                continue
            ordered = sorted(task_ids, key=pipeline.order_key)
            steps = [dag.task(t).step for t in ordered]
            assert steps == sorted(steps), link

"""Tests for the resilient compile/simulate service daemon.

Layered like the subsystem itself: protocol (parse/execute/fingerprint)
and circuit breaker are unit-tested in-process; the worker pool is
tested against real worker processes including SIGKILL chaos; the
daemon is tested end-to-end over real HTTP with the stdlib client.
"""

import http.client
import json
import os
import pickle
import signal
import socket
import threading
import time

import pytest

from repro.service import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    DeadlineExceeded,
    JobFailed,
    PoolSaturated,
    RequestError,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ServiceDeadline,
    ServiceError,
    ServiceOverloaded,
    ServiceRequest,
    WorkerCrashed,
    WorkerPool,
    parse_request,
    request_fingerprint,
    result_digest,
)
from repro.service.protocol import MAX_WORLD_SIZE, degraded_program, execute
from repro.service.workers import _worker_main
from repro.topology import Cluster

# A cold compile of this shape takes >1s — long enough to observe
# in-flight state (coalescing, saturation, SIGKILL) deterministically.
SLOW = {"algorithm": "mesh-allreduce", "nodes": 6, "gpus": 8,
        "buffer_mb": 16.0, "mbs": 8}
FAST = {"algorithm": "ring-allreduce", "nodes": 1, "gpus": 8,
        "buffer_mb": 16.0, "mbs": 4}


def _cluster(nodes=1, gpus=8):
    return Cluster(nodes=nodes, gpus_per_node=gpus)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestParseRequest:
    def test_minimal_algorithm_request(self):
        req = parse_request("simulate", {"algorithm": "ring-allreduce"})
        assert req.op == "simulate"
        assert req.algorithm == "ring-allreduce"
        assert req.nodes == 2 and req.gpus == 8

    def test_rejects_both_algorithm_and_source(self):
        with pytest.raises(RequestError, match="exactly one"):
            parse_request(
                "compile", {"algorithm": "ring-allreduce", "source": "x"}
            )

    def test_rejects_neither(self):
        with pytest.raises(RequestError, match="exactly one"):
            parse_request("compile", {})

    def test_rejects_file_paths(self):
        for spec in ("plans/foo.xml", "..\\evil", "a/b"):
            with pytest.raises(RequestError, match="file paths"):
                parse_request("compile", {"algorithm": spec})

    def test_rejects_unknown_name_and_synth(self):
        with pytest.raises(RequestError, match="unknown algorithm"):
            parse_request("compile", {"algorithm": "nope"})
        with pytest.raises(RequestError, match="unknown synthesizer"):
            parse_request("compile", {"algorithm": "magic:allreduce"})

    def test_rejects_bad_scheduler_and_numbers(self):
        with pytest.raises(RequestError, match="scheduler"):
            parse_request(
                "compile",
                {"algorithm": "ring-allreduce", "scheduler": "fifo"},
            )
        with pytest.raises(RequestError, match="positive"):
            parse_request(
                "compile", {"algorithm": "ring-allreduce", "nodes": 0}
            )
        with pytest.raises(RequestError, match="must be"):
            parse_request(
                "compile", {"algorithm": "ring-allreduce", "mbs": "many"}
            )

    def test_rejects_non_dict_body_and_bad_op(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_request("compile", [1, 2])
        with pytest.raises(RequestError, match="unknown op"):
            parse_request("launch", {"algorithm": "ring-allreduce"})

    def test_rejects_oversized_cluster(self):
        # Cluster construction is O(nodes*gpus) and runs on the event
        # loop; a giant world size must be a 400, not a daemon stall.
        with pytest.raises(RequestError, match="cap"):
            parse_request(
                "compile",
                {"algorithm": "ring-allreduce",
                 "nodes": 1_000_000_000, "gpus": 8},
            )
        # The cap itself is admitted (world size == MAX_WORLD_SIZE).
        req = parse_request(
            "compile",
            {"algorithm": "ring-allreduce",
             "nodes": MAX_WORLD_SIZE // 8, "gpus": 8},
        )
        assert req.nodes * req.gpus == MAX_WORLD_SIZE

    def test_rejects_non_finite_numbers(self):
        # NaN passes every <= comparison and Infinity survives min()
        # clamps, so either would disable the deadline safety layer.
        for field in ("deadline_ms", "buffer_mb"):
            for value in (float("nan"), float("inf")):
                with pytest.raises(RequestError, match="finite"):
                    parse_request(
                        "compile",
                        {"algorithm": "ring-allreduce", field: value},
                    )
        # Infinity into an int field is a clean 400, not OverflowError.
        with pytest.raises(RequestError, match="must be"):
            parse_request(
                "compile",
                {"algorithm": "ring-allreduce", "nodes": float("inf")},
            )

    def test_accepts_synth_spec_and_inline_source(self):
        assert parse_request(
            "simulate", {"algorithm": "taccl:allgather"}
        ).algorithm == "taccl:allgather"
        assert parse_request(
            "simulate", {"source": "program p { }"}
        ).source == "program p { }"


class TestFingerprint:
    def test_identical_requests_share_a_fingerprint(self):
        a = parse_request("simulate", dict(FAST))
        b = parse_request("simulate", dict(FAST))
        cluster = _cluster()
        assert request_fingerprint(a, cluster) == request_fingerprint(b, cluster)

    def test_op_and_knobs_split_the_fingerprint(self):
        cluster = _cluster()
        base = parse_request("simulate", dict(FAST))
        for variant in (
            parse_request("compile", dict(FAST)),
            parse_request("simulate", {**FAST, "buffer_mb": 32.0}),
            parse_request("simulate", {**FAST, "mbs": 2}),
            parse_request("simulate", {**FAST, "degraded": True}),
        ):
            assert request_fingerprint(base, cluster) != request_fingerprint(
                variant, cluster
            )


class TestExecute:
    def test_simulate_and_digest_are_deterministic(self):
        req = parse_request("simulate", dict(FAST))
        first = execute(req.to_payload())
        second = execute(req.to_payload())
        assert first["completion_time_us"] > 0
        assert second["cache_hit"] is True
        assert result_digest(first) == result_digest(second)

    def test_digest_ignores_volatile_fields(self):
        req = parse_request("compile", dict(FAST))
        result = execute(req.to_payload())
        mutated = dict(result, wall_ms=1e9, cache_hit=not result["cache_hit"])
        assert result_digest(mutated) == result_digest(result)

    def test_compile_reports_schedule_shape(self):
        result = execute(parse_request("compile", dict(FAST)).to_payload())
        assert result["tasks"] > 0 and result["tb_count"] > 0
        assert result["fingerprint"]

    def test_profile_adds_counters(self):
        result = execute(parse_request("profile", dict(FAST)).to_payload())
        assert "avg_idle_fraction" in result and "counters" in result

    def test_world_size_mismatch_is_a_request_error(self):
        req = parse_request(
            "simulate", {"source": "program p { }", "nodes": 1, "gpus": 8}
        )
        with pytest.raises(RequestError):
            execute(req.to_payload())

    def test_degraded_serves_the_reference_ring(self):
        req = parse_request(
            "simulate", {**SLOW, "nodes": 1, "gpus": 8, "degraded": True}
        )
        result = execute(req.to_payload())
        assert "degraded-ring" in result["algorithm"]
        assert result["completion_time_us"] > 0

    def test_degraded_program_matches_collective(self):
        req = parse_request("simulate", {"algorithm": "hm-allgather",
                                         "nodes": 2, "gpus": 8})
        program = degraded_program(req, _cluster(nodes=2))
        assert program.collective.value.lower() == "allgather"


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def _make(self, **kw):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=kw.pop("failure_threshold", 3),
            cooldown_s=kw.pop("cooldown_s", 5.0),
            clock=lambda: clock["t"],
        )
        return breaker, clock

    def test_trips_after_consecutive_failures_only(self):
        breaker, _ = self._make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1
        assert not breaker.allow_primary()

    def test_half_open_allows_one_probe(self):
        breaker, clock = self._make(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock["t"] = 5.0
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow_primary() is True  # the probe
        assert breaker.allow_primary() is False  # everyone else degraded
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow_primary() is True

    def test_half_open_admits_exactly_one_probe_under_concurrency(self):
        # The single-probe guarantee is a check-then-act sequence: a
        # thread hammer catches the unlocked version (several threads
        # observe probe_inflight=False and all claim the probe).
        breaker, clock = self._make(failure_threshold=1, cooldown_s=5.0)
        for _ in range(50):
            breaker.record_failure()
            clock["t"] += 5.0
            admitted = []
            barrier = threading.Barrier(8)

            def contend():
                barrier.wait()
                if breaker.allow_primary():
                    admitted.append(threading.get_ident())

            threads = [threading.Thread(target=contend) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(admitted) == 1  # exactly one probe per half-open
            breaker.record_success()
            assert breaker.state == STATE_CLOSED

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker, clock = self._make(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        clock["t"] = 5.0
        assert breaker.allow_primary()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        clock["t"] = 9.0  # cooldown restarted at t=5
        assert breaker.state == STATE_OPEN
        clock["t"] = 10.0
        assert breaker.state == STATE_HALF_OPEN


# ----------------------------------------------------------------------
# Worker pool (real processes)
# ----------------------------------------------------------------------


@pytest.fixture
def pool():
    pool = WorkerPool(workers=1, max_queue=4, hang_timeout_s=5.0,
                      retry_backoff_s=0.01)
    pool.start()
    yield pool
    pool.stop()


class TestWorkerPool:
    def test_runs_a_job_and_returns_metrics(self, pool):
        payload = parse_request("simulate", dict(FAST)).to_payload()
        reply = pool.submit(payload).result(timeout=60)
        assert reply["result"]["completion_time_us"] > 0
        assert reply["metrics"] is not None
        assert pool.stats.completed == 1

    def test_bad_request_surfaces_as_request_error(self, pool):
        payload = ServiceRequest(op="simulate", source="not a program {",
                                 nodes=1, gpus=8).to_payload()
        with pytest.raises(RequestError):
            pool.submit(payload).result(timeout=60)

    def test_worker_exception_carries_traceback(self, pool):
        payload = parse_request(
            "simulate", {"source": "program p { }", "nodes": 1, "gpus": 8}
        ).to_payload()
        payload["op"] = "simulate"
        payload["source"] = None
        payload["algorithm"] = None  # unreachable via parse; forces a crash
        with pytest.raises((JobFailed, RequestError)):
            pool.submit(payload).result(timeout=60)

    def test_admission_control_sheds_load(self, pool):
        slow = parse_request("simulate", dict(SLOW)).to_payload()
        futures = [pool.submit(slow)]
        # Worker takes the first job; then fill the 4-slot queue.
        deadline = time.time() + 10
        while pool.queue_depth() > 0 and time.time() < deadline:
            time.sleep(0.01)
        for _ in range(4):
            futures.append(pool.submit(dict(slow)))
        with pytest.raises(PoolSaturated):
            pool.submit(dict(slow))
        assert pool.stats.admission_rejects == 1
        for future in futures:
            future.cancel()

    def test_expired_deadline_is_cancelled_not_computed(self, pool):
        payload = parse_request("simulate", dict(FAST)).to_payload()
        future = pool.submit(payload, deadline=time.time() - 1.0)
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=30)
        assert pool.stats.deadline_expired >= 1

    def test_deadline_mid_compute_kills_the_worker(self):
        pool = WorkerPool(workers=1, max_queue=4, deadline_grace_s=0.05)
        pool.start()
        try:
            payload = parse_request("simulate", dict(SLOW)).to_payload()
            future = pool.submit(payload, deadline=time.time() + 0.3)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            assert pool.stats.deadline_kills == 1
            # The pool healed: the respawned worker still serves.
            fast = parse_request("simulate", dict(FAST)).to_payload()
            assert pool.submit(fast).result(timeout=60)["result"]
        finally:
            pool.stop()

    def test_sigkilled_worker_job_is_retried_and_completes(self):
        """The chaos criterion at pool level: kill mid-request, job lands."""
        pool = WorkerPool(workers=1, max_queue=4, retry_backoff_s=0.01)
        pool.start()
        try:
            payload = parse_request("simulate", dict(SLOW)).to_payload()
            future = pool.submit(payload)
            deadline = time.time() + 10
            while not pool.busy_pids() and time.time() < deadline:
                time.sleep(0.01)
            (pid,) = pool.busy_pids()
            os.kill(pid, signal.SIGKILL)
            reply = future.result(timeout=120)
            assert reply["result"]["completion_time_us"] > 0
            assert pool.stats.retries == 1
            assert pool.stats.restarts >= 1
            assert pid not in pool.worker_pids()
        finally:
            pool.stop()

    def test_extend_deadline_prevents_premature_kill(self):
        """A coalesced waiter with a longer budget must be able to
        stretch the shared job's deadline past the leader's."""
        pool = WorkerPool(workers=1, max_queue=4, deadline_grace_s=0.05)
        pool.start()
        try:
            payload = parse_request("simulate", dict(SLOW)).to_payload()
            future = pool.submit(payload, deadline=time.time() + 0.3)
            pool.extend_deadline(future, time.time() + 120.0)
            reply = future.result(timeout=120)
            assert reply["result"]["completion_time_us"] > 0
            assert pool.stats.deadline_kills == 0
        finally:
            pool.stop()

    def test_second_worker_death_fails_cleanly(self):
        pool = WorkerPool(workers=1, max_queue=4, retry_backoff_s=0.01,
                          max_retries=1)
        pool.start()
        try:
            payload = parse_request("simulate", dict(SLOW)).to_payload()
            future = pool.submit(payload)
            for _ in range(2):  # kill the original and the retry
                deadline = time.time() + 15
                while not pool.busy_pids() and time.time() < deadline:
                    time.sleep(0.01)
                (pid,) = pool.busy_pids()
                os.kill(pid, signal.SIGKILL)
                time.sleep(0.1)
            with pytest.raises(WorkerCrashed):
                future.result(timeout=30)
            assert pool.stats.failed == 1
        finally:
            pool.stop()


class TestWorkerReplySerialization:
    def test_unpicklable_reply_degrades_to_text_error(self):
        """A reply that fails to pickle must degrade to a text error,
        not kill the worker (PicklingError is not a ValueError)."""

        class _Beat:
            value = 0.0

        class _Conn:
            def __init__(self, messages):
                self._messages = list(messages)
                self.sent = []
                self._failed_once = False

            def recv(self):
                if not self._messages:
                    raise EOFError
                return self._messages.pop(0)

            def send(self, msg):
                if not self._failed_once:
                    self._failed_once = True
                    raise pickle.PicklingError("cannot pickle reply")
                self.sent.append(msg)

        payload = parse_request("simulate", dict(FAST)).to_payload()
        conn = _Conn([{"job_id": 7, "payload": payload, "deadline": None},
                      None])
        _worker_main(conn, _Beat(), None, None)
        assert len(conn.sent) == 1
        assert conn.sent[0]["job_id"] == 7
        assert conn.sent[0]["status"] == "error"
        assert "unserializable" in conn.sent[0]["error"]


# ----------------------------------------------------------------------
# Daemon end-to-end (real HTTP)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    daemon = ServiceDaemon(ServiceConfig(
        port=0, workers=2, queue_depth=8, cache_dir=str(cache_dir),
        default_deadline_ms=60_000.0,
    ))
    daemon.start()
    yield daemon
    daemon.stop()


@pytest.fixture
def client(daemon):
    with ServiceClient("127.0.0.1", daemon.port) as client:
        yield client


class TestDaemonHTTP:
    def test_health_and_readiness(self, client):
        health = client.healthz()
        assert health["http_status"] == 200 and health["status"] == "ok"
        assert health["workers_alive"] == 2
        assert client.readyz()["ready"] is True

    def test_simulate_round_trip_and_warm_digest_match(self, client):
        first = client.simulate(**FAST)
        assert first["ok"] and not first["degraded"]
        second = client.simulate(**FAST)
        assert second["result_digest"] == first["result_digest"]
        assert second["result"]["completion_time_us"] == pytest.approx(
            first["result"]["completion_time_us"]
        )

    def test_compile_and_profile_endpoints(self, client):
        compiled = client.compile(**FAST)
        assert compiled["result"]["tb_count"] > 0
        profiled = client.profile(**FAST)
        assert "counters" in profiled["result"]

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.simulate("no-such-algorithm")
        assert excinfo.value.status == 400

    def test_unknown_endpoint_and_method(self, daemon, client):
        response, _ = client._request("POST", "/v1/destroy", body={})
        assert response.status == 404
        response, _ = client._request("GET", "/v1/simulate")
        assert response.status == 405

    def test_request_id_echoes_back(self, client):
        reply = client.simulate(request_id="req-42", **FAST)
        assert reply["request_id"] == "req-42"

    def test_deadline_budget_expires_as_504(self, client):
        with pytest.raises(ServiceDeadline):
            client.simulate(deadline_ms=1, **SLOW)

    def test_nan_deadline_is_rejected_not_unbounded(self, client):
        # NaN compares False against everything, so an admitted NaN
        # deadline would run the job with no deadline at all.
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(deadline_ms="nan", **FAST)  # header path
        assert excinfo.value.status == 400
        response, _ = client._request(  # body path (JSON accepts NaN)
            "POST", "/v1/simulate", body={**FAST, "deadline_ms": float("nan")}
        )
        assert response.status == 400

    def test_oversized_cluster_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(**{**FAST, "nodes": 1_000_000_000})
        assert excinfo.value.status == 400
        assert "cap" in str(excinfo.value)

    def test_metrics_exposition(self, client):
        client.simulate(**FAST)
        text = client.metrics()
        assert 'service_requests_total{endpoint="simulate",status="200"}' in text
        assert "service_request_latency_ms_bucket" in text
        assert "service_workers_alive 2" in text
        # Worker-side compile metrics were merged into the daemon registry.
        assert "compile_wall_us" in text or "cache" in text


class TestDaemonRobustness:
    def test_concurrent_identical_requests_coalesce(self, daemon):
        body = {**SLOW, "nodes": 5}  # unique key, cold for this test
        replies = []

        def call():
            with ServiceClient("127.0.0.1", daemon.port) as client:
                replies.append(client.simulate(**body))

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
            time.sleep(0.05)  # leader first, waiters while it compiles
        for thread in threads:
            thread.join(timeout=120)
        assert len(replies) == 3
        digests = {r["result_digest"] for r in replies}
        assert len(digests) == 1
        coalesced = [r["coalesced"] for r in replies]
        assert coalesced.count(False) == 1 and coalesced.count(True) == 2

    def test_coalesced_waiter_with_longer_deadline_survives(self, tmp_path):
        """A waiter must not inherit the leader's shorter budget: the
        shared job's deadline is extended, the leader alone gets 504."""
        daemon = ServiceDaemon(ServiceConfig(
            port=0, workers=1, queue_depth=8,
            cache_dir=str(tmp_path / "coalesce-cache"),
            default_deadline_ms=120_000.0,
        ))
        daemon.start()
        try:
            body = dict(SLOW)  # cold for this daemon: >1s compile
            outcome = {}

            def leader():
                with ServiceClient("127.0.0.1", daemon.port) as c:
                    try:
                        outcome["leader"] = c.simulate(deadline_ms=600, **body)
                    except ServiceDeadline as exc:
                        outcome["leader"] = exc

            def waiter():
                with ServiceClient("127.0.0.1", daemon.port,
                                   timeout_s=180.0) as c:
                    try:
                        outcome["waiter"] = c.simulate(
                            deadline_ms=115_000, **body
                        )
                    except Exception as exc:  # noqa: BLE001 - recorded
                        outcome["waiter"] = exc

            lt = threading.Thread(target=leader)
            lt.start()
            deadline = time.time() + 10
            while not daemon.pool.busy_pids() and time.time() < deadline:
                time.sleep(0.01)
            assert daemon.pool.busy_pids(), "leader job never went busy"
            wt = threading.Thread(target=waiter)
            wt.start()
            lt.join(timeout=60)
            wt.join(timeout=180)
            reply = outcome["waiter"]
            assert isinstance(reply, dict), f"waiter failed: {reply!r}"
            assert reply["ok"] is True and reply["degraded"] is False
            # The shared job was never killed at the leader's deadline.
            assert daemon.pool.stats.deadline_kills == 0
        finally:
            daemon.stop()

    def test_saturation_sheds_with_429_and_retry_after(self):
        daemon = ServiceDaemon(ServiceConfig(port=0, workers=1, queue_depth=1))
        daemon.start()
        try:
            blockers = []
            # Distinct keys so nothing coalesces: occupy the worker and
            # the single queue slot, then the next request must shed.
            def call(nodes):
                with ServiceClient("127.0.0.1", daemon.port) as client:
                    try:
                        client.simulate(**{**SLOW, "nodes": nodes})
                    except ServiceError:
                        pass

            for nodes in (6, 7):
                thread = threading.Thread(target=call, args=(nodes,))
                thread.start()
                blockers.append(thread)
                time.sleep(0.3)
            with ServiceClient("127.0.0.1", daemon.port) as client:
                with pytest.raises(ServiceOverloaded) as excinfo:
                    client.simulate(**{**SLOW, "nodes": 8})
            assert excinfo.value.retry_after_s >= 1.0
            text_after = None
            for thread in blockers:
                thread.join(timeout=180)
            with ServiceClient("127.0.0.1", daemon.port) as client:
                text_after = client.metrics()
            assert "service_admission_rejects_total 1" in text_after
        finally:
            daemon.stop()

    def test_breaker_degrades_instead_of_failing(self):
        daemon = ServiceDaemon(ServiceConfig(
            port=0, workers=1, breaker_threshold=1, breaker_cooldown_s=60.0,
        ))
        daemon.start()
        try:
            with ServiceClient("127.0.0.1", daemon.port) as client:
                with pytest.raises(ServiceDeadline):
                    client.simulate(deadline_ms=200, **SLOW)
                # The breaker observes the job's death when the pool
                # reaps it (deadline + grace), shortly after our 504.
                deadline = time.time() + 10
                while (daemon.breaker.state == STATE_CLOSED
                       and time.time() < deadline):
                    time.sleep(0.05)
                assert daemon.breaker.state == STATE_OPEN
                reply = client.simulate(**SLOW)
                assert reply["degraded"] is True
                assert reply["degraded_by_breaker"] is True
                assert "degraded-ring" in reply["result"]["algorithm"]
                assert client.healthz()["breaker"] == "open"
                text = client.metrics()
                assert "service_breaker_state 2" in text
                assert "service_breaker_trips_total 1" in text
        finally:
            daemon.stop()

    def test_post_is_not_resent_when_response_is_lost(self):
        """A delivered POST whose response is lost may already have
        executed; the client must surface the error, not resend it."""
        attempts = []
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(4)
        server.settimeout(5.0)
        port = server.getsockname()[1]

        def serve():
            while True:
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                conn.settimeout(2.0)
                data = b""
                try:
                    while b"\r\n\r\n" not in data:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                    head, _, body = data.partition(b"\r\n\r\n")
                    length = 0
                    for line in head.split(b"\r\n"):
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.partition(b":")[2])
                    while len(body) < length:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        body += chunk
                except OSError:
                    pass
                attempts.append(data)
                conn.close()  # full request read, no response: drop it

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            with ServiceClient("127.0.0.1", port, timeout_s=5.0) as client:
                with pytest.raises(
                    (ConnectionError, http.client.HTTPException, OSError)
                ):
                    client.simulate(**FAST)
            time.sleep(0.2)  # let a (buggy) second attempt arrive
            assert len(attempts) == 1, "POST was resent after delivery"
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_get_reconnects_transparently(self):
        """GETs are idempotent: a dropped keep-alive connection is
        retried once without surfacing an error."""
        hits = []
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(4)
        server.settimeout(5.0)
        port = server.getsockname()[1]

        def serve():
            while True:
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                hits.append(1)
                if len(hits) == 1:
                    conn.close()  # simulate a dropped idle keep-alive
                    continue
                conn.settimeout(2.0)
                try:
                    data = b""
                    while b"\r\n\r\n" not in data:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                    body = b'{"status": "ok"}'
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: %d\r\n"
                        b"Connection: close\r\n\r\n%s" % (len(body), body)
                    )
                except OSError:
                    pass
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            with ServiceClient("127.0.0.1", port, timeout_s=5.0) as client:
                health = client.healthz()
            assert health["status"] == "ok"
            assert len(hits) == 2
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_sigkill_mid_request_still_serves_every_request(self, tmp_path):
        """The issue's chaos criterion, end to end: SIGKILL a worker
        mid-request on a cold cache; every admitted request completes
        exactly once with a verified (digest-consistent) response."""
        daemon = ServiceDaemon(ServiceConfig(
            port=0, workers=2, queue_depth=16,
            cache_dir=str(tmp_path / "chaos-cache"),
            default_deadline_ms=120_000.0,
        ))
        daemon.start()
        try:
            bodies = [
                {**SLOW, "nodes": 6},
                {**SLOW, "nodes": 7},
                dict(FAST),
                {**FAST, "buffer_mb": 32.0},
            ]
            replies = {}
            errors = []

            def call(index, body):
                with ServiceClient("127.0.0.1", daemon.port,
                                   timeout_s=180.0) as client:
                    try:
                        replies[index] = client.simulate(**body)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        errors.append((index, exc))

            threads = [
                threading.Thread(target=call, args=(i, body))
                for i, body in enumerate(bodies)
            ]
            for thread in threads:
                thread.start()
            deadline = time.time() + 15
            while not daemon.pool.busy_pids() and time.time() < deadline:
                time.sleep(0.01)
            victims = daemon.pool.busy_pids()
            assert victims, "no worker went busy; cannot run the chaos test"
            os.kill(victims[0], signal.SIGKILL)
            for thread in threads:
                thread.join(timeout=240)
            assert not errors, f"requests failed under chaos: {errors}"
            assert len(replies) == len(bodies)  # exactly once, no drops
            for index, body in enumerate(bodies):
                reply = replies[index]
                assert reply["ok"] is True
                assert reply["degraded"] is False
                # Verified response: digest matches a fresh local run.
                local = execute(parse_request("simulate", body).to_payload())
                assert reply["result_digest"] == result_digest(local)
            assert daemon.pool.stats.restarts >= 1
            with ServiceClient("127.0.0.1", daemon.port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["workers_alive"] == 2
        finally:
            daemon.stop()

"""The parallel sweep runner and its chaos-corpus integration."""

import threading

import pytest

from repro.experiments.base import (
    SweepError,
    SweepOutcome,
    parallel_sweep,
)
from repro.faults.harness import ChaosCorpusError, run_chaos_corpus
from repro.obs.log import log_ring
from repro.obs.metrics import collecting, current_registry


def _square(point):
    return point * point


def _square_with_metrics(point):
    registry = current_registry()
    registry.inc("sweep_points_total")
    registry.inc("sweep_value_total", point)
    registry.set("sweep_last_point", point)
    registry.observe("sweep_point_value", point)
    return point * point


def _fail_on_three(point):
    if point == 3:
        raise ValueError(f"bad point {point}")
    return point


class UnpicklableError(RuntimeError):
    """An exception whose state cannot cross a process boundary."""

    def __init__(self, message):
        super().__init__(message)
        self.lock = threading.Lock()  # locks cannot be pickled


def _raise_unpicklable(point):
    raise UnpicklableError(f"unpicklable failure at {point}")


def _return_unpicklable(point):
    if point == 2:
        return threading.Lock()
    return point


class TestInlinePath:
    def test_plain_map(self):
        assert parallel_sweep(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_single_point_stays_inline(self):
        assert parallel_sweep(_square, [5], jobs=8) == [25]

    def test_strict_raises_through(self):
        with pytest.raises(ValueError):
            parallel_sweep(_fail_on_three, [1, 3], jobs=1)

    def test_non_strict_collects_outcomes(self):
        outcomes = parallel_sweep(
            _fail_on_three, [1, 3, 5], jobs=1, strict=False
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == 1
        assert "bad point 3" in outcomes[1].error
        assert outcomes[2].index == 2 and outcomes[2].point == 5


class TestPoolPath:
    def test_results_ordered_by_input_position(self):
        points = list(range(8))
        assert parallel_sweep(_square, points, jobs=2) == [
            p * p for p in points
        ]

    def test_worker_exception_propagates_with_traceback(self):
        with pytest.raises(SweepError) as excinfo:
            parallel_sweep(_fail_on_three, [1, 2, 3, 4], jobs=2)
        err = excinfo.value
        assert err.index == 2
        assert err.point == 3
        assert "ValueError" in err.worker_traceback
        assert "bad point 3" in str(err)

    def test_non_strict_pool_keeps_all_outcomes(self):
        outcomes = parallel_sweep(
            _fail_on_three, [1, 3, 5], jobs=2, strict=False
        )
        assert isinstance(outcomes[0], SweepOutcome)
        assert [o.ok for o in outcomes] == [True, False, True]

    def test_worker_metrics_merge_into_parent_registry(self):
        points = [1, 2, 3, 4]
        with collecting() as registry:
            parallel_sweep(_square_with_metrics, points, jobs=2)
        assert registry.counter("sweep_points_total").value() == len(points)
        assert registry.counter("sweep_value_total").value() == sum(points)
        # Gauges merge in point order: the last point wins, matching a
        # sequential run.
        assert registry.gauge("sweep_last_point").value() == points[-1]
        series = registry.histogram("sweep_point_value").series[()]
        assert series.count == len(points)
        assert series.sum == sum(points)
        assert series.min == min(points)
        assert series.max == max(points)

    def test_unpicklable_exception_surfaces_not_deadlocks(self):
        """An exception whose state cannot be pickled must not wedge the
        pool: it surfaces as SweepError carrying the original traceback."""
        with pytest.raises(SweepError) as excinfo:
            parallel_sweep(_raise_unpicklable, [1, 2, 3], jobs=2)
        err = excinfo.value
        assert "UnpicklableError" in err.worker_traceback
        assert f"unpicklable failure at {err.point}" in err.worker_traceback

    def test_unpicklable_exception_non_strict_outcome(self):
        # Two points so the sweep actually takes the pool path.
        outcomes = parallel_sweep(
            _raise_unpicklable, [7, 8], jobs=2, strict=False
        )
        assert all(not o.ok for o in outcomes)
        assert "unpicklable failure at 7" in outcomes[0].error

    def test_unpicklable_return_value_degrades_to_error(self):
        outcomes = parallel_sweep(
            _return_unpicklable, [1, 2, 3], jobs=2, strict=False
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "unpicklable value" in outcomes[1].error
        assert "lock" in outcomes[1].error
        with pytest.raises(SweepError, match="unpicklable value"):
            parallel_sweep(_return_unpicklable, [1, 2, 3], jobs=2)

    def test_parallel_metrics_match_sequential(self):
        points = [1, 2, 3, 4]
        with collecting() as sequential:
            parallel_sweep(_square_with_metrics, points, jobs=1)
        with collecting() as parallel:
            parallel_sweep(_square_with_metrics, points, jobs=2)
        assert sequential.to_json() == parallel.to_json()


class TestPerPointWallTime:
    def test_inline_outcomes_carry_wall_time(self):
        outcomes = parallel_sweep(_square, [1, 2, 3], jobs=1, strict=False)
        assert all(o.wall_s > 0 for o in outcomes)

    def test_pool_outcomes_carry_wall_time(self):
        outcomes = parallel_sweep(
            _square, [1, 2, 3, 4], jobs=2, strict=False
        )
        assert all(o.wall_s > 0 for o in outcomes)

    def test_failed_points_still_timed(self):
        outcomes = parallel_sweep(
            _fail_on_three, [1, 3, 5], jobs=2, strict=False
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert all(o.wall_s > 0 for o in outcomes)

    def test_progress_logged_to_ring(self):
        log_ring().clear()
        parallel_sweep(_square, list(range(8)), jobs=2)
        records = [
            r for r in log_ring().tail() if r.get("event") == "sweep-progress"
        ]
        assert records, "pool sweep should log sweep-progress"
        last = records[-1]
        assert last["done"] == 8
        assert last["total"] == 8
        assert last["last_wall_s"] >= 0


class TestChaosCorpusPropagation:
    CELL = dict(
        algorithms=("ring-allreduce",),
        scenarios=("link-flap",),
        seeds=(0,),
        policies=("fallback",),
    )

    def test_failed_cell_raises_with_worker_traceback(self, monkeypatch):
        import repro.faults.harness as harness

        def boom(*args, **kwargs):
            raise RuntimeError("injected harness bug")

        monkeypatch.setattr(harness, "run_with_faults", boom)
        with pytest.raises(ChaosCorpusError) as excinfo:
            run_chaos_corpus(jobs=1, **self.CELL)
        assert "injected harness bug" in str(excinfo.value)
        rows = excinfo.value.rows
        assert len(rows) == 1
        assert rows[0]["outcome"] == "failed"
        assert "RuntimeError" in rows[0]["error"]

    def test_non_strict_marks_cell_failed(self, monkeypatch):
        import repro.faults.harness as harness

        def boom(*args, **kwargs):
            raise RuntimeError("injected harness bug")

        monkeypatch.setattr(harness, "run_with_faults", boom)
        rows = run_chaos_corpus(jobs=1, strict=False, **self.CELL)
        assert rows[0]["outcome"] == "failed"
        assert "injected harness bug" in rows[0]["error"]

    def test_unpicklable_cell_error_surfaces(self, monkeypatch):
        import repro.faults.harness as harness

        def boom(*args, **kwargs):
            raise UnpicklableError("chaos cell exploded")

        monkeypatch.setattr(harness, "run_with_faults", boom)
        with pytest.raises(ChaosCorpusError) as excinfo:
            run_chaos_corpus(jobs=1, **self.CELL)
        assert "UnpicklableError" in str(excinfo.value)
        assert "chaos cell exploded" in str(excinfo.value)

    def test_parallel_corpus_matches_serial(self):
        serial = run_chaos_corpus(
            policies=("fallback",),
            algorithms=("ring-allreduce",),
            scenarios=("link-flap",),
            seeds=(0, 1),
            jobs=1,
        )
        parallel = run_chaos_corpus(
            policies=("fallback",),
            algorithms=("ring-allreduce",),
            scenarios=("link-flap",),
            seeds=(0, 1),
            jobs=2,
        )
        assert serial == parallel

"""Event-queue backends: identical pop order, lazy cancellation, peek.

The calendar/bucket queue exists purely for wall time; these tests pin
the contract the simulator's determinism rests on — both backends pop
any event stream in the identical ascending ``(time, seq)`` order,
cancelled entries are skipped (and counted) without dispatch, and
``peek`` returns exactly the entry the next ``pop`` would deliver.
"""

import random

import pytest

from repro.runtime.events import (
    AUTO_BUCKET_MIN_INVOCATIONS,
    BucketEventQueue,
    HeapEventQueue,
    make_event_queue,
)


def _drain(queue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append((entry[0], entry[1], entry[2]))


def _random_stream(seed, n=500, horizon=1000.0):
    rng = random.Random(seed)
    return [
        (rng.uniform(0.0, horizon), seq, f"k{seq % 7}") for seq in range(n)
    ]


class TestOrderIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_backends_pop_identically(self, seed):
        heap, bucket = HeapEventQueue(), BucketEventQueue(width_us=64.0)
        for time, seq, kind in _random_stream(seed):
            heap.post(time, seq, kind, None)
            bucket.post(time, seq, kind, None)
        assert _drain(heap) == _drain(bucket)

    def test_interleaved_post_and_pop(self):
        """Posts landing in the already-active bucket stay ordered."""
        heap, bucket = HeapEventQueue(), BucketEventQueue(width_us=10.0)
        stream = _random_stream(3, n=200, horizon=100.0)
        for q in (heap, bucket):
            for time, seq, kind in stream[:100]:
                q.post(time, seq, kind, None)
        got = []
        seq = 1000
        for step in range(100):
            a, b = heap.pop(), bucket.pop()
            assert a == b
            got.append(a)
            # Post a follow-up at the popped entry's own time: an
            # intra-bucket arrival for the active bucket.
            t = a[0] + 0.5
            heap.post(t, seq, "follow", None)
            bucket.post(t, seq, "follow", None)
            seq += 1
        assert _drain(heap) == _drain(bucket)

    def test_same_time_orders_by_seq(self):
        bucket = BucketEventQueue(width_us=64.0)
        for seq in (5, 1, 3):
            bucket.post(7.0, seq, "tie", None)
        assert [e[1] for e in _drain(bucket)] == [1, 3, 5]


class TestCancellation:
    @pytest.mark.parametrize("make", [HeapEventQueue, BucketEventQueue])
    def test_cancelled_entries_are_skipped_and_counted(self, make):
        queue = make()
        entries = [queue.post(float(i), i, "e", None) for i in range(10)]
        for entry in entries[::2]:
            queue.cancel(entry)
        assert [e[1] for e in _drain(queue)] == [1, 3, 5, 7, 9]
        assert queue.cancelled_skipped == 5

    @pytest.mark.parametrize("make", [HeapEventQueue, BucketEventQueue])
    def test_depth_tracks_pending_entries(self, make):
        queue = make()
        for i in range(8):
            queue.post(float(i), i, "e", None)
        assert len(queue) == 8
        assert queue.depth_max == 8
        queue.pop()
        assert len(queue) == 7


class TestPeek:
    @pytest.mark.parametrize("make", [HeapEventQueue, BucketEventQueue])
    def test_peek_matches_next_pop(self, make):
        queue = make()
        for time, seq, kind in _random_stream(4, n=64):
            queue.post(time, seq, kind, None)
        while True:
            peeked = queue.peek()
            popped = queue.pop()
            assert peeked is popped
            if popped is None:
                return

    @pytest.mark.parametrize("make", [HeapEventQueue, BucketEventQueue])
    def test_peek_discards_dead_prefix(self, make):
        queue = make()
        dead = queue.post(1.0, 0, "dead", None)
        live = queue.post(2.0, 1, "live", None)
        queue.cancel(dead)
        assert queue.peek() is live
        assert queue.cancelled_skipped == 1
        assert queue.pop() is live

    @pytest.mark.parametrize("make", [HeapEventQueue, BucketEventQueue])
    def test_peek_empty(self, make):
        queue = make()
        assert queue.peek() is None
        assert queue.pop() is None


class TestFactory:
    def test_auto_selects_heap_below_threshold(self):
        queue = make_event_queue("auto", AUTO_BUCKET_MIN_INVOCATIONS - 1)
        assert isinstance(queue, HeapEventQueue)

    def test_auto_selects_bucket_at_threshold(self):
        queue = make_event_queue("auto", AUTO_BUCKET_MIN_INVOCATIONS)
        assert isinstance(queue, BucketEventQueue)

    def test_explicit_backends(self):
        assert isinstance(make_event_queue("heap", 10**9), HeapEventQueue)
        assert isinstance(make_event_queue("bucket", 0), BucketEventQueue)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown event queue"):
            make_event_queue("wheel", 0)

    def test_bad_bucket_width_rejected(self):
        with pytest.raises(ValueError, match="width must be positive"):
            BucketEventQueue(width_us=0.0)

    def test_bucket_occupancy_counters(self):
        queue = BucketEventQueue(width_us=1.0)
        for i in range(6):
            queue.post(float(i // 3) * 10.0, i, "e", None)
        _drain(queue)
        assert queue.refills == 2
        assert queue.bucket_occupancy_max == 3

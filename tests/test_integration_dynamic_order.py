"""End-to-end soundness: replay simulated completion orders symbolically.

The simulator reports the dynamic order in which task invocations
completed.  For every backend and algorithm, replaying each micro-batch's
completion order sequentially through the symbolic buffer engine must
still establish the collective's postcondition — otherwise the runtime
execution violated a data dependency somewhere (a credit bug, a wake-up
bug, a TB-ordering bug...).

This is the strongest correctness statement the repository makes about
the *runtime*, complementing the static per-program verification.
"""

from collections import defaultdict

import pytest

from repro import MB, MSCCLBackend, ResCCLBackend, multi_node, simulate
from repro.algorithms import (
    hm_allgather,
    hm_allreduce,
    hm_reducescatter,
    mesh_allreduce,
    ring_allreduce,
)
from repro.ir.task import Collective
from repro.runtime.memory import verify_completion_order
from repro.runtime.plan import ExecMode
from repro.synth import TACCLSynthesizer, TECCLSynthesizer
from repro.topology import single_node


def replay_all_microbatches(plan, report):
    """Split the completion log by micro-batch and verify each replay."""
    per_mb = defaultdict(list)
    for task_id, mb in report.completion_order:
        per_mb[mb].append(task_id)
    assert len(per_mb) == plan.n_microbatches
    for mb, order in per_mb.items():
        result = verify_completion_order(plan.program, order)
        assert result.ok, (mb, result.errors[:3])


CASES = [
    ("hm-allreduce", lambda c: hm_allreduce(c.nodes, c.gpus_per_node)),
    ("hm-allgather", lambda c: hm_allgather(c.nodes, c.gpus_per_node)),
    ("hm-reducescatter", lambda c: hm_reducescatter(c.nodes, c.gpus_per_node)),
    (
        "taccl-allreduce",
        lambda c: TACCLSynthesizer().synthesize(c, Collective.ALLREDUCE),
    ),
    (
        "teccl-allgather",
        lambda c: TECCLSynthesizer().synthesize(c, Collective.ALLGATHER),
    ),
]


class TestResCCLDynamicOrder:
    @pytest.mark.parametrize("name,builder", CASES)
    def test_kernel_mode(self, name, builder):
        cluster = multi_node(2, 4)
        program = builder(cluster)
        plan = ResCCLBackend(max_microbatches=3).plan(cluster, program, 24 * MB)
        report = simulate(plan)
        replay_all_microbatches(plan, report)

    def test_interpreter_mode(self):
        cluster = multi_node(2, 4)
        program = hm_allreduce(2, 4)
        plan = ResCCLBackend(
            mode=ExecMode.INTERPRETER, max_microbatches=3
        ).plan(cluster, program, 24 * MB)
        replay_all_microbatches(plan, simulate(plan))

    def test_rr_scheduler(self):
        cluster = multi_node(2, 4)
        program = hm_allreduce(2, 4)
        plan = ResCCLBackend(scheduler="rr", max_microbatches=3).plan(
            cluster, program, 24 * MB
        )
        replay_all_microbatches(plan, simulate(plan))

    def test_single_node_mesh(self):
        cluster = single_node(8)
        plan = ResCCLBackend(max_microbatches=3).plan(
            cluster, mesh_allreduce(8), 24 * MB
        )
        replay_all_microbatches(plan, simulate(plan))


class TestMSCCLDynamicOrder:
    @pytest.mark.parametrize("name,builder", CASES)
    def test_stage_level(self, name, builder):
        cluster = multi_node(2, 4)
        program = builder(cluster)
        plan = MSCCLBackend(max_microbatches=3).plan(cluster, program, 24 * MB)
        replay_all_microbatches(plan, simulate(plan))

    def test_with_instances(self):
        cluster = multi_node(2, 4)
        program = hm_allreduce(2, 4)
        plan = MSCCLBackend(instances=2, max_microbatches=4).plan(
            cluster, program, 32 * MB
        )
        replay_all_microbatches(plan, simulate(plan))

    def test_ring_single_stage(self):
        cluster = single_node(4)
        plan = MSCCLBackend(max_microbatches=4).plan(
            cluster, ring_allreduce(4), 16 * MB
        )
        replay_all_microbatches(plan, simulate(plan))


class TestUnderContention:
    def test_order_still_valid_with_congestors(self):
        """Background traffic perturbs timing but never correctness."""
        cluster = multi_node(2, 4)
        program = hm_allreduce(2, 4)
        plan = ResCCLBackend(max_microbatches=3).plan(cluster, program, 24 * MB)
        congestors = [(("nic:out:0:0",), 12500.0), (("nic:in:1:0",), 12500.0)]
        report = simulate(plan, background_traffic=congestors)
        replay_all_microbatches(plan, report)

"""Tests for the Megatron-style training throughput model."""

import pytest

from repro import MSCCLBackend, NCCLBackend, ResCCLBackend, multi_node
from repro.ir.task import Collective
from repro.topology import single_node
from repro.training import (
    GPT3_MODELS,
    T5_MODELS,
    MegatronSimulator,
    ParallelConfig,
    dp_allreduce_bytes,
    expert_program,
    iteration_demands,
    model_by_name,
    tp_allreduce_bytes,
    tp_allreduce_count,
)


class TestModels:
    def test_catalog(self):
        assert len(GPT3_MODELS) == 4
        assert len(T5_MODELS) == 3
        assert model_by_name("GPT-3 6.7B").params == pytest.approx(6.7e9)

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            model_by_name("LLaMA 7B")

    def test_flops_per_token(self):
        model = model_by_name("T5 220M")
        assert model.flops_per_token() == pytest.approx(6 * 220e6)

    def test_families(self):
        assert all(m.family == "gpt3" for m in GPT3_MODELS)
        assert all(m.family == "t5" for m in T5_MODELS)


class TestParallelism:
    def test_world_size(self):
        assert ParallelConfig(tp=8, dp=2, batch_size=16).world_size == 16

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ParallelConfig(tp=0, dp=1, batch_size=1)
        with pytest.raises(ValueError):
            ParallelConfig(tp=1, dp=8, batch_size=4)

    def test_tp_allreduce_bytes(self):
        model = model_by_name("GPT-3 6.7B")
        parallel = ParallelConfig(tp=8, dp=2, batch_size=16, microbatch_size=4)
        # 4 samples x 2048 seq x 4096 hidden x 2 bytes = 64 MB.
        assert tp_allreduce_bytes(model, parallel) == pytest.approx(
            4 * 2048 * 4096 * 2
        )

    def test_tp_allreduce_count(self):
        model = model_by_name("GPT-3 6.7B")
        parallel = ParallelConfig(tp=8, dp=2, batch_size=16, microbatch_size=4)
        # 4 per layer per micro-batch; 8 samples / 4 per micro-batch = 2.
        assert tp_allreduce_count(model, parallel) == 4 * 32 * 2

    def test_no_tp_comm_without_tp(self):
        model = model_by_name("T5 220M")
        parallel = ParallelConfig(tp=1, dp=16, batch_size=16)
        assert tp_allreduce_count(model, parallel) == 0

    def test_dp_allreduce_bytes(self):
        model = model_by_name("T5 220M")
        parallel = ParallelConfig(tp=1, dp=16, batch_size=16)
        assert dp_allreduce_bytes(model, parallel) == pytest.approx(2 * 220e6)

    def test_no_dp_comm_without_dp(self):
        model = model_by_name("GPT-3 6.7B")
        parallel = ParallelConfig(tp=8, dp=1, batch_size=8)
        assert dp_allreduce_bytes(model, parallel) == 0.0

    def test_iteration_demands(self):
        model = model_by_name("GPT-3 6.7B")
        parallel = ParallelConfig(tp=8, dp=2, batch_size=16, microbatch_size=4)
        demands = iteration_demands(model, parallel)
        scopes = {d.scope for d in demands}
        assert scopes == {"tp", "dp"}


class TestExpertPrograms:
    def test_single_node_uses_mesh(self):
        program = expert_program(single_node(8), Collective.ALLREDUCE)
        assert program.name.startswith("mesh")

    def test_multi_node_uses_hm(self):
        program = expert_program(multi_node(2, 8), Collective.ALLREDUCE)
        assert program.name.startswith("hm")


class TestSimulator:
    @pytest.fixture(scope="class")
    def cluster(self):
        return multi_node(2, 8)

    def test_iteration_breakdown(self, cluster):
        sim = MegatronSimulator(cluster, NCCLBackend(max_microbatches=4))
        model = model_by_name("T5 220M")
        parallel = ParallelConfig(tp=1, dp=16, batch_size=16)
        breakdown = sim.iteration(model, parallel)
        assert breakdown.compute_us > 0
        assert breakdown.tp_comm_us == 0.0  # no TP for T5
        assert breakdown.dp_comm_us > 0
        assert 0 < breakdown.comm_fraction < 1

    def test_throughput_positive(self, cluster):
        sim = MegatronSimulator(cluster, ResCCLBackend(max_microbatches=4))
        model = model_by_name("T5 770M")
        parallel = ParallelConfig(tp=1, dp=16, batch_size=16)
        assert sim.throughput(model, parallel) > 0

    def test_resccl_fastest_on_t5(self, cluster):
        model = model_by_name("T5 220M")
        parallel = ParallelConfig(tp=1, dp=16, batch_size=16)
        throughputs = {}
        for name, backend in (
            ("NCCL", NCCLBackend(max_microbatches=4)),
            ("MSCCL", MSCCLBackend(max_microbatches=4)),
            ("ResCCL", ResCCLBackend(max_microbatches=4)),
        ):
            throughputs[name] = MegatronSimulator(cluster, backend).throughput(
                model, parallel
            )
        assert throughputs["ResCCL"] > throughputs["NCCL"]
        assert throughputs["ResCCL"] > throughputs["MSCCL"]

    def test_bigger_model_slower(self, cluster):
        sim = MegatronSimulator(cluster, NCCLBackend(max_microbatches=4))
        parallel = ParallelConfig(tp=1, dp=16, batch_size=16)
        small = sim.throughput(model_by_name("T5 220M"), parallel)
        large = sim.throughput(model_by_name("T5 3B"), parallel)
        assert small > large

    def test_layout_must_match_cluster(self, cluster):
        sim = MegatronSimulator(cluster, NCCLBackend())
        with pytest.raises(ValueError, match="GPUs"):
            sim.iteration(
                model_by_name("T5 220M"),
                ParallelConfig(tp=1, dp=32, batch_size=32),
            )

    def test_tp_group_must_fit_server(self, cluster):
        sim = MegatronSimulator(cluster, NCCLBackend(max_microbatches=2))
        with pytest.raises(ValueError, match="exceeds one server"):
            sim.iteration(
                model_by_name("GPT-3 6.7B"),
                ParallelConfig(tp=16, dp=1, batch_size=16),
            )

    def test_invalid_knobs(self, cluster):
        with pytest.raises(ValueError):
            MegatronSimulator(cluster, NCCLBackend(), mfu=0.0)
        with pytest.raises(ValueError):
            MegatronSimulator(cluster, NCCLBackend(), dp_overlap=1.5)

    def test_dp_overlap_hides_comm(self, cluster):
        model = model_by_name("T5 3B")
        parallel = ParallelConfig(tp=1, dp=16, batch_size=16)
        exposed = MegatronSimulator(
            cluster, NCCLBackend(max_microbatches=4), dp_overlap=0.0
        )
        hidden = MegatronSimulator(
            cluster, NCCLBackend(max_microbatches=4), dp_overlap=0.9
        )
        assert hidden.throughput(model, parallel) > exposed.throughput(
            model, parallel
        )

"""Static/dynamic progress-analysis parity over the DSL corpus.

Property: every shipped algorithm whose compiled plan passes the static
progress linter (an acyclic wait-for graph, i.e. provably deadlock-free)
must also run to completion under the dynamic progress watchdog with
faults disabled — zero stall detections, no watchdog escalation.  A
divergence in either direction is a bug: a lint pass with a watchdog
trip means the linter's model is unsound; a watchdog trip on a healthy
fabric means the runtime lost progress the plan proves it should make.
"""

from pathlib import Path

import pytest

from repro.core import ResCCLBackend
from repro.lang import parse_program
from repro.runtime import MB, Simulator, lint_plan
from repro.topology import Cluster

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "algorithms").glob(
        "*.rescclang"
    )
)


def cluster_for(program):
    gpus = program.header.gpus_per_node
    if program.nranks % gpus:
        return Cluster(nodes=1, gpus_per_node=program.nranks)
    return Cluster(nodes=program.nranks // gpus, gpus_per_node=gpus)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_lint_clean_implies_watchdog_clean(path):
    program = parse_program(path.read_text())
    cluster = cluster_for(program)
    plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 4 * MB)

    lint = lint_plan(plan)
    lint.raise_if_failed()
    assert plan.config.watchdog_window_us > 0  # watchdog armed by default

    sim = Simulator(plan)
    report = sim.run()  # must not raise SimulationStall / SimulationDeadlock
    assert sim.stalls_detected == 0
    assert report.completion_time_us > 0

"""The shipped textual ResCCLang corpus parses, validates, and verifies."""

from pathlib import Path

import pytest

from repro.analysis import verify_delivery
from repro.lang import parse_program, validate_program
from repro.runtime import MB, verify_collective
from repro.topology import Cluster

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "algorithms").glob(
        "*.rescclang"
    )
)


def cluster_for(program):
    gpus = program.header.gpus_per_node
    if program.nranks % gpus:
        return Cluster(nodes=1, gpus_per_node=program.nranks)
    return Cluster(nodes=program.nranks // gpus, gpus_per_node=gpus)


class TestCorpus:
    def test_corpus_exists(self):
        assert len(CORPUS) >= 6

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_parses_validates_verifies(self, path):
        program = parse_program(path.read_text())
        validate_program(program, cluster_for(program)).raise_if_failed()
        verify_collective(program).raise_if_failed()

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_compiles_under_resccl(self, path):
        from repro.core import ResCCLCompiler

        program = parse_program(path.read_text())
        compiled = ResCCLCompiler().compile(program, cluster_for(program))
        compiled.pipeline.check_all(compiled.dag)

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_chunk_level_delivery(self, path):
        """The counting verifier proves every corpus plan exactly-once.

        Stronger than ``verify_collective``'s set semantics: a duplicate
        reduction contribution is invisible to a set union but counts as
        a violation here.
        """
        from repro.core import ResCCLBackend

        program = parse_program(path.read_text())
        cluster = cluster_for(program)
        plan = ResCCLBackend(max_microbatches=4).plan(
            cluster, program, 4 * MB
        )
        verify_delivery(plan).raise_if_failed()

    def test_headers_document_usage(self):
        for path in CORPUS:
            text = path.read_text()
            assert text.startswith("#")
            assert "resccl verify" in text

"""The exact/fast fidelity contract end to end.

``exact`` is the bit-reproducible default; ``fast``
(``SimConfig.with_fidelity("fast")``) buys wall clock with two
documented approximations — rate-change hysteresis and temporal
micro-batch collapse — whose completion-time error the scale benchmark
bounds.  These tests pin the plumbing around that contract:

* ``SimConfig`` rejects malformed numeric fields on construction;
* the ``fast`` preset is approximate but *bounded*, and does strictly
  less rate-solver work;
* temporal collapse is refused — visibly, via
  ``counters.agg_collapse_disabled`` — whenever sibling timing is
  observable (background traffic, fault injection, checkpoint/resume),
  so recovery machinery never sees an aggregated trajectory;
* the CLI (``--sim-fidelity``) and the service protocol
  (``sim_fidelity``) both reach the same preset.
"""

import dataclasses

import pytest

from repro.algorithms import build_algorithm, ring_allreduce
from repro.cli import main
from repro.core import ResCCLBackend
from repro.faults import run_with_faults
from repro.obs.metrics import collecting
from repro.runtime import MB, SimConfig, simulate
from repro.service.protocol import (
    RequestError,
    execute,
    parse_request,
    request_fingerprint,
)
from repro.topology import Cluster


@pytest.fixture(scope="module")
def plan():
    cluster = Cluster(nodes=2, gpus_per_node=4)
    program = build_algorithm("mesh-allreduce", cluster)
    # 32 MB over the 8-chunk mesh plans 4 micro-batches — collapse has
    # real work to do (8 MB would plan a single micro-batch, making the
    # fast preset a near no-op).
    return ResCCLBackend(max_microbatches=4).plan(cluster, program, 32 * MB)


def fast_plan(plan):
    return dataclasses.replace(plan, config=plan.config.with_fidelity("fast"))


class TestSimConfigValidation:
    @pytest.mark.parametrize(
        "field, bad",
        [
            ("gamma", -0.1),
            ("fifo_depth", 0),
            ("fifo_depth", 2.5),
            ("interp_cost_us", -1.0),
            ("kernel_load_us", -1.0),
            ("watchdog_window_us", -1.0),
            ("rate_rel_epsilon", -1e-9),
            ("fault_trace_cap", -1),
            ("vectorize_min_flows", -1),
            ("event_queue", "splay"),
            ("event_bucket_width_us", 0.0),
            ("event_bucket_width_us", -64.0),
        ],
    )
    def test_bad_field_rejected_on_construction(self, field, bad):
        with pytest.raises(ValueError):
            SimConfig(**{field: bad})

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SimConfig(), gamma=-1.0)

    def test_fidelity_presets(self):
        config = SimConfig()
        fast = config.with_fidelity("fast")
        assert fast.rate_rel_epsilon > 0
        assert fast.collapse_microbatches is True
        exact = fast.with_fidelity("exact")
        assert exact.rate_rel_epsilon == 0.0
        assert exact.collapse_microbatches is False
        with pytest.raises(ValueError, match="unknown fidelity preset"):
            config.with_fidelity("turbo")


class TestFastFidelity:
    def test_bounded_error_and_less_work(self, plan):
        exact = simulate(plan)
        fast = simulate(fast_plan(plan))
        rel = abs(
            fast.completion_time_us - exact.completion_time_us
        ) / exact.completion_time_us
        assert rel <= 0.15
        assert fast.counters.rate_updates < exact.counters.rate_updates
        assert fast.counters.agg_runs_collapsed > 0
        assert fast.counters.agg_instances_expanded > 0
        # The fan-out reconstructs the full expanded report shape.
        assert len(fast.tb_stats) == len(exact.tb_stats)
        assert fast.total_bytes == exact.total_bytes

    def test_collapse_refused_under_background_traffic(self, plan):
        edge = next(iter(plan.cluster.edges))
        report = simulate(
            fast_plan(plan), background_traffic=[((edge,), 500.0)]
        )
        assert report.counters.agg_collapse_disabled == 1
        assert report.counters.agg_runs_collapsed == 0


class TestCollapseNoop:
    @pytest.fixture()
    def single_mb_plan(self):
        # 8 MB over the 8-chunk mesh plans exactly one micro-batch, so
        # temporal collapse is permitted but has nothing to merge.
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm("mesh-allreduce", cluster)
        return ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)

    def test_single_microbatch_counts_noop(self, single_mb_plan):
        report = simulate(fast_plan(single_mb_plan))
        assert report.counters.agg_collapse_noop == 1
        assert report.counters.agg_runs_collapsed == 0
        assert report.counters.agg_collapse_disabled == 0
        assert "collapse no-op" in report.counters.summary()

    def test_noop_emits_metric(self, single_mb_plan):
        with collecting() as registry:
            simulate(fast_plan(single_mb_plan))
        assert registry.counter("sim_agg_collapse_noop_total").value() == 1

    def test_real_collapse_is_not_a_noop(self, plan):
        report = simulate(fast_plan(plan))
        assert report.counters.agg_collapse_noop == 0
        assert report.counters.agg_runs_collapsed > 0

    def test_exact_run_never_noops(self, single_mb_plan):
        report = simulate(single_mb_plan)
        assert report.counters.agg_collapse_noop == 0


class TestCollapseDisabledUnderFaults:
    def test_fault_run_marks_collapse_disabled(self, plan):
        outcome = run_with_faults(
            fast_plan(plan), "link-flap", seed=1, recovery="fallback"
        )
        assert outcome.report.counters.agg_collapse_disabled == 1
        assert outcome.report.counters.agg_runs_collapsed == 0
        assert outcome.baseline.counters.agg_collapse_disabled == 1
        # The run still recovers and completes under the fast preset.
        assert outcome.report.completion_time_us > 0
        assert outcome.report.fault_stats.unrecovered == 0

    def test_checkpoint_replan_resume_with_fast_fidelity(self):
        """Replan-and-resume (checkpoint capture + residual stitching)
        operates on the expanded trajectory even when fast fidelity
        requested collapse — every micro-batch instance is individually
        accounted across the resume boundary."""
        cluster = Cluster(nodes=2, gpus_per_node=4)
        plan = ResCCLBackend(max_microbatches=4).plan(
            cluster, ring_allreduce(8), 16 * MB
        )
        outcome = run_with_faults(
            fast_plan(plan), "link-kill", seed=1, recovery="replan"
        )
        report = outcome.report
        assert report.counters.agg_collapse_disabled == 1
        assert report.fault_stats.replans >= 1
        assert report.fault_stats.unrecovered == 0
        # Same physical work as the exact faulted run (the two presets
        # may time it differently, but nothing is lost or duplicated).
        exact = run_with_faults(plan, "link-kill", seed=1, recovery="replan")
        assert sorted(report.completion_order) == sorted(
            exact.report.completion_order
        )


class TestCliFidelity:
    def test_run_accepts_fast(self, capsys):
        assert main([
            "run", "ring-allreduce", "--nodes", "2", "--gpus", "4",
            "--buffer-mb", "8", "--mbs", "4", "--sim-fidelity", "fast",
        ]) == 0
        assert "GB/s algbw" in capsys.readouterr().out

    def test_profile_surfaces_queue_and_agg_counters(self, capsys):
        # 32 MB over 8 ring chunks plans 4 micro-batches, so the fast
        # preset's collapse line appears in the counter digest.
        assert main([
            "profile", "ring-allreduce", "--nodes", "2", "--gpus", "4",
            "--buffer-mb", "32", "--mbs", "4", "--sim-fidelity", "fast",
        ]) == 0
        out = capsys.readouterr().out
        assert "queue depth <=" in out
        assert "collapse:" in out

    def test_rejects_unknown_preset(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", "ring-allreduce", "--sim-fidelity", "turbo",
            ])


class TestServiceFidelity:
    def test_parse_and_execute(self):
        request = parse_request(
            "simulate",
            {
                "algorithm": "ring-allreduce",
                "nodes": 2,
                "gpus": 4,
                "buffer_mb": 8,
                "mbs": 4,
                "sim_fidelity": "fast",
            },
        )
        assert request.sim_fidelity == "fast"
        result = execute(request.to_payload())
        assert result["sim_fidelity"] == "fast"
        assert result["completion_time_us"] > 0

    def test_default_is_exact(self):
        request = parse_request(
            "simulate", {"algorithm": "ring-allreduce", "nodes": 2, "gpus": 4}
        )
        assert request.sim_fidelity == "exact"

    def test_bad_fidelity_rejected(self):
        with pytest.raises(RequestError, match="sim_fidelity"):
            parse_request(
                "simulate",
                {"algorithm": "ring-allreduce", "sim_fidelity": "turbo"},
            )

    def test_fidelity_splits_coalescing_key(self):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        base = {"algorithm": "ring-allreduce", "nodes": 2, "gpus": 4}
        exact = parse_request("simulate", dict(base))
        fast = parse_request("simulate", dict(base, sim_fidelity="fast"))
        assert request_fingerprint(exact, cluster) != request_fingerprint(
            fast, cluster
        )

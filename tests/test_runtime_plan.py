"""Tests for execution plans and micro-batch planning."""

import pytest

from repro.algorithms import ring_allgather
from repro.ir.dag import build_dag
from repro.runtime.plan import (
    MB,
    ExecMode,
    ExecutionPlan,
    Invocation,
    Side,
    TBProgram,
    plan_microbatches,
)
from repro.topology import single_node


def tiny_plan(n_mb=2, tamper=None):
    """A hand-built plan for a 2-rank, 2-chunk ring AllGather."""
    cluster = single_node(2)
    program = ring_allgather(2)
    dag = build_dag(program.transfers, cluster)
    tbs = []
    for rank in range(2):
        sends = [
            Invocation(t.task_id, Side.SEND, mb)
            for mb in range(n_mb)
            for t in dag.tasks
            if t.src == rank
        ]
        recvs = [
            Invocation(t.task_id, Side.RECV, mb)
            for mb in range(n_mb)
            for t in dag.tasks
            if t.dst == rank
        ]
        tbs.append(TBProgram(rank=rank, tb_index=0, invocations=sends))
        tbs.append(TBProgram(rank=rank, tb_index=1, invocations=recvs))
    if tamper:
        tamper(tbs)
    return ExecutionPlan(
        name="tiny",
        cluster=cluster,
        program=program,
        dag=dag,
        n_microbatches=n_mb,
        chunk_bytes=1024.0,
        tb_programs=tbs,
    )


class TestPlanMicrobatches:
    def test_paper_default_one_mb_chunk(self):
        # 512 MB buffer, 16 chunks -> 32 micro-batches of 1 MB chunks.
        n_mb, chunk = plan_microbatches(512 * MB, 16)
        assert n_mb == 32
        assert chunk == pytest.approx(MB)

    def test_small_buffer_shrinks_chunk(self):
        n_mb, chunk = plan_microbatches(4 * MB, 16)
        assert n_mb == 1
        assert chunk == pytest.approx(MB / 4)

    def test_large_buffer_grows_chunk(self):
        n_mb, chunk = plan_microbatches(
            8192 * MB, 16, max_microbatches=64
        )
        assert n_mb == 64
        assert chunk > MB

    def test_exact_reconstruction(self):
        buffer = 384 * MB
        n_mb, chunk = plan_microbatches(buffer, 32)
        assert n_mb * 32 * chunk == pytest.approx(buffer)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_microbatches(0, 16)
        with pytest.raises(ValueError):
            plan_microbatches(MB, 0)


class TestPlanValidation:
    def test_valid_plan_passes(self):
        tiny_plan().validate()

    def test_total_bytes(self):
        plan = tiny_plan(n_mb=3)
        assert plan.total_bytes == pytest.approx(3 * 2 * 1024.0)

    def test_duplicate_invocation_rejected(self):
        def tamper(tbs):
            tbs[0].invocations.append(tbs[0].invocations[0])

        with pytest.raises(ValueError, match="duplicate"):
            tiny_plan(tamper=tamper).validate()

    def test_missing_invocation_rejected(self):
        def tamper(tbs):
            tbs[0].invocations.pop()

        with pytest.raises(ValueError, match="expected"):
            tiny_plan(tamper=tamper).validate()

    def test_wrong_rank_rejected(self):
        def tamper(tbs):
            moved = tbs[0].invocations.pop()
            tbs[2].invocations.append(moved)  # rank 1's send TB

        with pytest.raises(ValueError, match="placed on rank"):
            tiny_plan(tamper=tamper).validate()

    def test_out_of_range_microbatch_rejected(self):
        def tamper(tbs):
            inv = tbs[0].invocations.pop()
            tbs[0].invocations.append(Invocation(inv.task_id, inv.side, 99))

        with pytest.raises(ValueError, match="micro-batch"):
            tiny_plan(tamper=tamper).validate()

    def test_max_tbs_per_rank(self):
        assert tiny_plan().max_tbs_per_rank() == 2

    def test_default_mode_is_kernel(self):
        assert tiny_plan().mode is ExecMode.KERNEL

    def test_chunks_per_microbatch_defaults_to_program(self):
        plan = tiny_plan()
        assert plan.chunks_per_microbatch == plan.program.nchunks

"""Tests for critical-path attribution over simulation traces."""

import pytest

from repro import MB, ResCCLBackend, multi_node
from repro.algorithms import hm_allreduce
from repro.analysis import BUCKETS, attribute, critical_path
from repro.baselines import MSCCLBackend, NCCLBackend
from repro.ir.task import Collective
from repro.runtime.metrics import SimReport, TraceEvent
from repro.runtime.plan import ExecMode
from repro.runtime.simulator import simulate


@pytest.fixture(scope="module")
def cluster():
    return multi_node(2, 4)


@pytest.fixture(scope="module")
def plan(cluster):
    return ResCCLBackend(max_microbatches=3).plan(
        cluster, hm_allreduce(2, 4), 24 * MB
    )


@pytest.fixture(scope="module")
def traced_report(plan):
    return simulate(plan, record_trace=True)


class TestCriticalPath:
    def test_partitions_completion_time(self, traced_report):
        segments = critical_path(traced_report)
        assert segments, "critical path must not be empty"
        assert segments[0].start_us == pytest.approx(0.0, abs=1e-6)
        previous_end = 0.0
        for segment in segments:
            assert segment.start_us == pytest.approx(previous_end, abs=1e-6)
            assert segment.end_us >= segment.start_us
            previous_end = segment.end_us
        assert previous_end == pytest.approx(
            traced_report.completion_time_us, abs=1e-6
        )

    def test_known_buckets_only(self, traced_report):
        for segment in critical_path(traced_report):
            assert segment.kind in BUCKETS

    def test_requires_trace(self, plan):
        untraced = simulate(plan)
        with pytest.raises(ValueError, match="trace"):
            critical_path(untraced)

    def test_empty_report_raises(self):
        report = SimReport(
            plan_name="empty",
            mode=ExecMode.KERNEL,
            completion_time_us=0.0,
            total_bytes=0.0,
        )
        with pytest.raises(ValueError):
            critical_path(report)

    def test_single_event_trace(self):
        report = SimReport(
            plan_name="single",
            mode=ExecMode.KERNEL,
            completion_time_us=10.0,
            total_bytes=1.0,
            trace=[
                TraceEvent(
                    tb_index=0, rank=0, kind="send",
                    start_us=2.0, end_us=8.0, task_id=0, mb=0,
                )
            ],
        )
        segments = critical_path(report)
        kinds = [(s.kind, s.start_us, s.end_us) for s in segments]
        assert kinds == [
            ("idle", 0.0, 2.0),
            ("send", 2.0, 8.0),
            ("idle", 8.0, 10.0),
        ]

    def test_wait_splices_to_producer(self):
        # TB 1 waits on task 0; TB 0's send (task 0) ends exactly when
        # the wait lifts, so the walk must charge [0, 5] to the send.
        report = SimReport(
            plan_name="splice",
            mode=ExecMode.KERNEL,
            completion_time_us=9.0,
            total_bytes=1.0,
            trace=[
                TraceEvent(tb_index=0, rank=0, kind="send",
                           start_us=0.0, end_us=5.0, task_id=0, mb=0),
                TraceEvent(tb_index=1, rank=1, kind="wait:data",
                           start_us=0.0, end_us=5.0, task_id=0, mb=0),
                TraceEvent(tb_index=1, rank=1, kind="recv",
                           start_us=5.0, end_us=9.0, task_id=0, mb=0),
            ],
        )
        segments = critical_path(report)
        assert [(s.kind, s.tb_index) for s in segments] == [
            ("send", 0), ("recv", 1)
        ]
        assert sum(s.duration_us for s in segments) == pytest.approx(9.0)


class TestAttribution:
    def test_buckets_sum_to_completion(self, traced_report, plan):
        result = attribute(traced_report, dag=plan.dag)
        assert result.attributed_total_us == pytest.approx(
            traced_report.completion_time_us,
            rel=0.01,  # the acceptance bound; exact by construction
        )

    def test_buckets_sum_across_backends(self, cluster):
        backends = [
            ResCCLBackend(max_microbatches=2),
            MSCCLBackend(max_microbatches=2),
            NCCLBackend(max_microbatches=2),
        ]
        for backend in backends:
            if isinstance(backend, NCCLBackend):
                plan = backend.plan(cluster, Collective.ALLREDUCE, 16 * MB)
            else:
                plan = backend.plan(cluster, hm_allreduce(2, 4), 16 * MB)
            report = simulate(plan, record_trace=True)
            result = attribute(report)
            assert result.attributed_total_us == pytest.approx(
                report.completion_time_us, rel=0.01
            )

    def test_per_rank_sums_to_total(self, traced_report):
        result = attribute(traced_report)
        per_rank_total = sum(
            value
            for buckets in result.per_rank.values()
            for value in buckets.values()
        )
        assert per_rank_total == pytest.approx(result.attributed_total_us)

    def test_per_link_requires_dag(self, traced_report, plan):
        assert attribute(traced_report).per_link == {}
        with_links = attribute(traced_report, dag=plan.dag)
        assert with_links.per_link
        links = set(with_links.per_link)
        assert links <= {task.link for task in plan.dag.tasks}

    def test_bubble_threshold(self):
        report = SimReport(
            plan_name="bubbly",
            mode=ExecMode.KERNEL,
            completion_time_us=100.0,
            total_bytes=1.0,
            trace=[
                TraceEvent(tb_index=0, rank=0, kind="send",
                           start_us=0.0, end_us=10.0, task_id=0, mb=0),
                TraceEvent(tb_index=0, rank=0, kind="send",
                           start_us=90.0, end_us=100.0, task_id=1, mb=0),
            ],
        )
        result = attribute(report, bubble_threshold_us=50.0)
        assert len(result.bubbles) == 1
        bubble = result.bubbles[0]
        assert bubble.kind == "idle"
        assert bubble.duration_us == pytest.approx(80.0)
        # Raising the threshold above the gap suppresses the flag.
        assert attribute(report, bubble_threshold_us=90.0).bubbles == []

    def test_render(self, traced_report, plan):
        text = attribute(traced_report, dag=plan.dag).render()
        assert "critical path" in text
        assert "bucket" in text
        assert "us" in text

    def test_share(self, traced_report):
        result = attribute(traced_report)
        total_share = sum(result.share(bucket) for bucket in BUCKETS)
        assert total_share == pytest.approx(1.0)

"""Tests for the symbolic buffer-state engine."""

import pytest

from repro.ir.task import Collective, CommType
from repro.lang.builder import AlgoProgram
from repro.runtime.memory import (
    SemanticsError,
    execute_symbolic,
    initial_state,
    verify_collective,
)


def program_with(collective, nranks, transfers):
    program = AlgoProgram.create(nranks, collective, name="test")
    for src, dst, step, chunk, op in transfers:
        program.transfer(src, dst, step, chunk, op)
    return program


class TestInitialState:
    def test_allgather_initial(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        state = initial_state(program)
        assert state[2][2] == frozenset({2})
        assert state[2][0] == frozenset()

    def test_allreduce_initial(self):
        program = AlgoProgram.create(4, Collective.ALLREDUCE)
        state = initial_state(program)
        assert all(
            state[r][c] == frozenset({r}) for r in range(4) for c in range(4)
        )


class TestExecution:
    def test_recv_overwrites(self):
        program = program_with(
            Collective.ALLGATHER, 2, [(0, 1, 0, 0, CommType.RECV)]
        )
        state, errors = execute_symbolic(program)
        assert not errors
        assert state[1][0] == frozenset({0})

    def test_rrc_merges(self):
        program = program_with(
            Collective.ALLREDUCE, 2, [(0, 1, 0, 1, CommType.RRC)]
        )
        state, errors = execute_symbolic(program)
        assert not errors
        assert state[1][1] == frozenset({0, 1})

    def test_same_step_reads_see_pre_state(self):
        """A swap at one step must exchange, not chain."""
        program = program_with(
            Collective.ALLREDUCE,
            2,
            [
                (0, 1, 0, 0, CommType.RECV),
                (1, 0, 0, 0, CommType.RECV),
            ],
        )
        state, errors = execute_symbolic(program)
        assert not errors
        assert state[1][0] == frozenset({0})
        assert state[0][0] == frozenset({1})

    def test_sending_empty_chunk_is_error(self):
        program = program_with(
            Collective.ALLGATHER, 3, [(0, 1, 0, 2, CommType.RECV)]
        )
        _, errors = execute_symbolic(program)
        assert any("before holding" in e for e in errors)

    def test_concurrent_writes_detected(self):
        program = AlgoProgram.create(4, Collective.ALLREDUCE)
        # Two reductions into (2, chunk 0) at the same step: a race.
        program.transfers.append(
            __import__("repro.ir.task", fromlist=["Transfer"]).Transfer(
                src=0, dst=2, step=0, chunk=0, op=CommType.RRC
            )
        )
        program.transfers.append(
            __import__("repro.ir.task", fromlist=["Transfer"]).Transfer(
                src=1, dst=2, step=0, chunk=0, op=CommType.RRC
            )
        )
        _, errors = execute_symbolic(program)
        assert any("concurrent writes" in e for e in errors)


class TestVerification:
    def test_correct_allgather_verifies(self):
        from repro.algorithms import ring_allgather

        assert verify_collective(ring_allgather(4)).ok

    def test_incomplete_allgather_fails(self):
        program = program_with(
            Collective.ALLGATHER, 3, [(0, 1, 0, 0, CommType.RECV)]
        )
        result = verify_collective(program)
        assert not result.ok
        assert any("AllGather" in e for e in result.errors)

    def test_partial_allreduce_fails(self):
        program = program_with(
            Collective.ALLREDUCE, 2, [(0, 1, 0, 0, CommType.RRC)]
        )
        result = verify_collective(program)
        assert not result.ok

    def test_reducescatter_checks_only_own_chunk(self):
        from repro.algorithms import ring_reducescatter

        result = verify_collective(ring_reducescatter(4))
        assert result.ok

    def test_raise_if_failed(self):
        program = program_with(
            Collective.ALLREDUCE, 2, [(0, 1, 0, 0, CommType.RRC)]
        )
        with pytest.raises(SemanticsError):
            verify_collective(program).raise_if_failed()

    def test_final_state_exposed(self):
        from repro.algorithms import ring_allreduce

        result = verify_collective(ring_allreduce(3))
        assert result.final_state[0][0] == frozenset({0, 1, 2})

"""Structural tests of the NCCL-like and MSCCL-like baseline backends."""

import pytest

from repro import MB, MSCCLBackend, NCCLBackend, multi_node
from repro.algorithms import hm_allgather, hm_allreduce, mesh_allreduce
from repro.baselines.nccl import channel_permutation, permute_transfers
from repro.ir.task import Collective, CommType, Transfer
from repro.runtime.memory import verify_collective
from repro.runtime.plan import ExecMode, Side
from repro.topology import single_node


class TestChannelPermutations:
    def test_channel0_is_identity(self):
        cluster = multi_node(2, 8)
        assert channel_permutation(cluster, 0) == list(range(16))

    def test_channels_rotate_within_nodes(self):
        cluster = multi_node(2, 8)
        perm = channel_permutation(cluster, 1)
        # Node membership is preserved, local order rotated by one NIC
        # group (2 GPUs).
        assert perm[:8] == [2, 3, 4, 5, 6, 7, 0, 1]
        assert perm[8:] == [10, 11, 12, 13, 14, 15, 8, 9]

    def test_channels_cross_distinct_nics(self):
        cluster = multi_node(2, 8)
        crossing_nics = set()
        for channel in range(4):
            perm = channel_permutation(cluster, channel)
            boundary_src = perm[7]  # last GPU of node 0 in ring order
            crossing_nics.add(cluster.nic_of(boundary_src))
        assert len(crossing_nics) == 4  # every rail engaged

    def test_permuted_ring_still_an_allgather(self):
        """Each channel's permuted ring is itself a correct AllGather."""
        from repro.algorithms import ring_allgather
        from repro.lang.builder import AlgoProgram

        cluster = multi_node(2, 4)
        base = ring_allgather(8)
        for channel in range(4):
            perm = channel_permutation(cluster, channel)
            program = AlgoProgram.create(8, Collective.ALLGATHER)
            program.transfers.extend(
                permute_transfers(base.transfers, perm, chunk_offset=0)
            )
            verify_collective(program).raise_if_failed()

    def test_permute_rejects_extended_chunks(self):
        with pytest.raises(ValueError, match="cannot permute"):
            permute_transfers(
                [Transfer(src=0, dst=1, step=0, chunk=9, op=CommType.RECV)],
                list(range(4)),
                0,
            )


class TestNCCLStructure:
    def test_tb_count_two_halves_per_channel(self):
        cluster = multi_node(2, 4)
        plan = NCCLBackend(nchannels=4, max_microbatches=2).plan(
            cluster, Collective.ALLGATHER, 16 * MB
        )
        # Fused recvCopySend per channel = send half + recv half.
        assert plan.max_tbs_per_rank() == 8

    def test_kernel_mode(self):
        cluster = multi_node(2, 4)
        plan = NCCLBackend(max_microbatches=2).plan(
            cluster, Collective.ALLREDUCE, 16 * MB
        )
        assert plan.mode is ExecMode.KERNEL

    def test_extended_chunk_space(self):
        cluster = multi_node(2, 4)
        backend = NCCLBackend(nchannels=4, max_microbatches=2)
        plan = backend.plan(cluster, Collective.ALLGATHER, 16 * MB)
        assert plan.chunks_per_microbatch == 8 * 4
        chunks = {t.chunk for t in plan.program.transfers}
        assert max(chunks) >= 8  # channels beyond 0 use offset ids

    def test_ignores_custom_program(self):
        cluster = multi_node(2, 4)
        backend = NCCLBackend(max_microbatches=2)
        plan = backend.plan(
            cluster, Collective.ALLGATHER, 16 * MB, program=hm_allgather(2, 4)
        )
        assert "ring" in plan.name

    def test_rejects_unknown_collective(self):
        backend = NCCLBackend()
        with pytest.raises(ValueError):
            backend.select_algorithm(multi_node(2, 4), "broadcast")


class TestMSCCLStructure:
    def test_interpreter_mode(self):
        cluster = multi_node(2, 4)
        plan = MSCCLBackend(max_microbatches=2).plan(
            cluster, hm_allreduce(2, 4), 16 * MB
        )
        assert plan.mode is ExecMode.INTERPRETER

    def test_hm_allreduce_tb_count_matches_table3(self):
        """Per-stage connection TBs: 2 full-mesh stages x (3 send + 3
        recv) + 2 fused ring stages = 14 per rank on Topo1."""
        cluster = multi_node(2, 4)
        plan = MSCCLBackend(max_microbatches=2).plan(
            cluster, hm_allreduce(2, 4), 16 * MB
        )
        assert plan.max_tbs_per_rank() == 14

    def test_ring_stage_fuses(self):
        cluster = single_node(4)
        from repro.algorithms import ring_allgather

        plan = MSCCLBackend(max_microbatches=2).plan(
            cluster, ring_allgather(4), 16 * MB
        )
        # Single ring stage: one fused TB per rank.
        assert plan.max_tbs_per_rank() == 1
        assert any("ring" in tb.label for tb in plan.tb_programs)

    def test_instances_multiply_tbs(self):
        cluster = single_node(8)
        program = mesh_allreduce(8)
        one = MSCCLBackend(instances=1, max_microbatches=4).plan(
            cluster, program, 64 * MB
        )
        four = MSCCLBackend(instances=4, max_microbatches=4).plan(
            cluster, program, 64 * MB
        )
        assert four.max_tbs_per_rank() == 4 * one.max_tbs_per_rank()

    def test_instances_partition_microbatches(self):
        cluster = single_node(4)
        from repro.algorithms import ring_allgather

        plan = MSCCLBackend(instances=2, max_microbatches=8).plan(
            cluster, ring_allgather(4), 32 * MB
        )
        plan.validate()  # every (task, mb) covered exactly once

    def test_rejects_wrong_world_size(self):
        with pytest.raises(ValueError, match="cluster has"):
            MSCCLBackend().plan(single_node(4), hm_allreduce(2, 4), MB)

    def test_algorithm_level_ordering(self):
        """Within a stage TB, micro-batches form the outer loop."""
        cluster = single_node(4)
        from repro.algorithms import ring_allgather

        plan = MSCCLBackend(max_microbatches=4).plan(
            cluster, ring_allgather(4), 16 * MB
        )
        tb = plan.tb_programs[0]
        mbs = [inv.mb for inv in tb.invocations]
        assert mbs == sorted(mbs)  # 0...0, 1...1, 2...2

"""Tests for the fluid-flow contention model (Equation 1 behaviour)."""

import pytest

from repro.runtime.flows import Flow, FlowNetwork


def make_network(gamma=0.0):
    return FlowNetwork({"a": 100.0, "b": 50.0}, gamma=gamma)


class TestSingleFlow:
    def test_uncontended_rate_is_capacity(self):
        net = make_network()
        flow, changed = net.start_flow(("a",), nbytes=1000.0, cap=1e9, now=0.0)
        assert flow.rate == pytest.approx(100.0)
        assert flow in changed

    def test_per_flow_cap_applies(self):
        net = make_network()
        flow, _ = net.start_flow(("a",), nbytes=1000.0, cap=30.0, now=0.0)
        assert flow.rate == pytest.approx(30.0)

    def test_bottleneck_edge_wins(self):
        net = make_network()
        flow, _ = net.start_flow(("a", "b"), nbytes=1000.0, cap=1e9, now=0.0)
        assert flow.rate == pytest.approx(50.0)

    def test_eta(self):
        net = make_network()
        flow, _ = net.start_flow(("a",), nbytes=1000.0, cap=1e9, now=0.0)
        assert flow.eta() == pytest.approx(10.0)

    def test_unknown_edge_rejected(self):
        net = make_network()
        with pytest.raises(KeyError):
            net.start_flow(("zzz",), nbytes=1.0, cap=1.0, now=0.0)


class TestSharing:
    def test_fair_share_without_penalty(self):
        net = make_network(gamma=0.0)
        f1, _ = net.start_flow(("a",), 1000.0, cap=1e9, now=0.0)
        f2, changed = net.start_flow(("a",), 1000.0, cap=1e9, now=0.0)
        assert f1.rate == pytest.approx(50.0)
        assert f2.rate == pytest.approx(50.0)
        assert f1 in changed  # existing flow re-rated

    def test_contention_penalty_reduces_aggregate(self):
        gamma = 0.1
        net = make_network(gamma=gamma)
        f1, _ = net.start_flow(("a",), 1000.0, cap=1e9, now=0.0)
        f2, _ = net.start_flow(("a",), 1000.0, cap=1e9, now=0.0)
        aggregate = f1.rate + f2.rate
        assert aggregate == pytest.approx(100.0 / (1.0 + gamma))
        assert aggregate < 100.0

    def test_capped_flow_donates_spare_share(self):
        net = make_network(gamma=0.0)
        slow, _ = net.start_flow(("a",), 1000.0, cap=10.0, now=0.0)
        fast, _ = net.start_flow(("a",), 1000.0, cap=1e9, now=0.0)
        assert slow.rate == pytest.approx(10.0)
        assert fast.rate == pytest.approx(90.0)

    def test_finish_restores_rate(self):
        net = make_network(gamma=0.0)
        f1, _ = net.start_flow(("a",), 1000.0, cap=1e9, now=0.0)
        f2, _ = net.start_flow(("a",), 1000.0, cap=1e9, now=0.0)
        f1.advance_to(5.0)
        changed = net.finish_flow(f1, 5.0)
        assert f2 in changed
        assert f2.rate == pytest.approx(100.0)

    def test_edge_load_tracking(self):
        net = make_network()
        f1, _ = net.start_flow(("a",), 1.0, cap=1.0, now=0.0)
        net.start_flow(("a", "b"), 1.0, cap=1.0, now=0.0)
        assert net.edge_load("a") == 2
        assert net.edge_load("b") == 1
        net.finish_flow(f1, 1.0)
        assert net.edge_load("a") == 1

    def test_effective_capacity_figure4_shape(self):
        """Aggregate throughput peaks once flows saturate the link and
        then degrades — the Figure 4 roll-off."""
        per_tb_cap = 25.0  # four of these saturate the 100-unit edge
        aggregates = []
        for k in range(1, 9):
            net = FlowNetwork({"nic": 100.0}, gamma=0.05)
            flows = [
                net.start_flow(("nic",), 1.0, cap=per_tb_cap, now=0.0)[0]
                for _ in range(k)
            ]
            aggregates.append(sum(f.rate for f in flows))
        # Rising region: 1 -> 4 TBs.
        assert aggregates[0] < aggregates[1] < aggregates[3]
        # Saturation then decline: beyond 4 TBs throughput drops.
        assert aggregates[7] < aggregates[3]

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork({"a": 1.0}, gamma=-0.1)


class TestFlowBookkeeping:
    def test_advance_to_consumes_bytes(self):
        flow = Flow(flow_id=0, edges=("a",), nbytes=100.0, cap=10.0, start_time=0.0)
        flow.rate = 10.0
        flow.advance_to(4.0)
        assert flow.remaining == pytest.approx(60.0)

    def test_advance_is_monotonic(self):
        flow = Flow(flow_id=0, edges=("a",), nbytes=100.0, cap=10.0, start_time=5.0)
        flow.rate = 10.0
        flow.advance_to(3.0)  # before start: no effect
        assert flow.remaining == pytest.approx(100.0)

    def test_zero_rate_eta_is_infinite(self):
        flow = Flow(flow_id=0, edges=("a",), nbytes=100.0, cap=10.0, start_time=0.0)
        assert flow.eta() == float("inf")

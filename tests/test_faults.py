"""The fault-injection subsystem: schedules, watchdog, recovery, fallback."""

import pytest

from repro.algorithms.ring import ring_allreduce
from repro.core import ResCCLBackend
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    make_policy,
    parse_inject_spec,
    plan_edges,
    run_with_faults,
)
from repro.faults.recovery import ResilientRunner
from repro.runtime import MB, SimulationDeadlock, SimulationStall, Simulator, simulate
from repro.runtime.flows import FlowNetwork
from repro.runtime.plan import SimConfig
from repro.topology import Cluster


@pytest.fixture(scope="module")
def cluster():
    return Cluster(nodes=1, gpus_per_node=4)


@pytest.fixture(scope="module")
def plan(cluster):
    backend = ResCCLBackend(max_microbatches=4)
    return backend.plan(cluster, ring_allreduce(4), 8 * MB)


@pytest.fixture(scope="module")
def clean(plan):
    return simulate(plan)


def edge_of(plan):
    return plan_edges(plan)[0]


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_generation_is_deterministic(self, plan):
        edges = plan_edges(plan)
        first = FaultPlan.generate("chaos", edges, 5000.0, seed=7)
        second = FaultPlan.generate("chaos", edges, 5000.0, seed=7)
        assert first.events == second.events
        assert FaultPlan.generate("chaos", edges, 5000.0, seed=8).events != first.events

    def test_scaled_to_is_a_cumulative_prefix(self, plan):
        edges = plan_edges(plan)
        full = FaultPlan.generate("link-flap", edges, 5000.0, seed=0,
                                  params={"count": 8})
        half = full.scaled_to(0.5)
        assert len(half) == 4
        assert half.events == sorted(full.events, key=lambda e: e.at_us)[:4]
        assert full.scaled_to(0.0).events == []
        assert len(full.scaled_to(1.0)) == len(full)

    def test_spec_parsing(self, plan):
        edges = plan_edges(plan)
        fp = parse_inject_spec("link-flap:count=2,down_us=500", edges, 5000.0)
        assert len(fp) == 2
        assert all(e.kind is FaultKind.FLAP for e in fp.events)
        assert all(e.duration_us == 500.0 for e in fp.events)
        with pytest.raises(ValueError, match="key=value"):
            parse_inject_spec("link-flap:count", edges, 5000.0)
        with pytest.raises(ValueError, match="unknown fault scenario"):
            parse_inject_spec("meteor-strike", edges, 5000.0)

    def test_kill_events_are_permanent(self):
        with pytest.raises(ValueError, match="permanent"):
            FaultEvent(FaultKind.KILL, 10.0, edge="nv:out:0", duration_us=5.0)


# ----------------------------------------------------------------------
# Fabric hooks
# ----------------------------------------------------------------------


class TestFlowNetworkFactors:
    def test_capacity_factor_scales_and_restores(self):
        net = FlowNetwork({"e": 100.0})
        flow, _ = net.start_flow(("e",), nbytes=1000.0, cap=1e9, now=0.0)
        assert flow.rate == pytest.approx(100.0)
        net.set_capacity_factor("e", 0.5, now=1.0)
        assert net.effective_capacity("e") == pytest.approx(50.0)
        assert flow.rate == pytest.approx(50.0)
        net.set_capacity_factor("e", 0.0, now=2.0)
        assert flow.rate == 0.0
        net.set_capacity_factor("e", 1.0, now=3.0)
        assert net.capacity_factor("e") == 1.0
        assert flow.rate == pytest.approx(100.0)

    def test_edge_census_counts_starved_flows(self):
        net = FlowNetwork({"e": 100.0})
        net.start_flow(("e",), nbytes=1000.0, cap=1e9, now=0.0)
        net.set_capacity_factor("e", 0.0, now=0.0)
        flows, zero, capacity = net.edge_census()["e"]
        assert (flows, zero, capacity) == (1, 1, 0.0)


# ----------------------------------------------------------------------
# Injection end to end
# ----------------------------------------------------------------------


class TestInjection:
    def test_empty_plan_is_byte_identical(self, plan, clean):
        report = ResilientRunner(plan, FaultPlan()).run()
        assert report.completion_time_us == clean.completion_time_us
        assert report.algo_bandwidth == clean.algo_bandwidth
        assert report.fault_stats is not None
        assert report.fault_stats.injected == 0
        assert report.fault_stats.detected_stalls == 0

    def test_flap_self_heals_and_records_recovery(self, plan, clean):
        fp = FaultPlan().flap(edge_of(plan), at_us=200.0, down_us=800.0)
        sim = Simulator(plan, injector=FaultInjector(fp))
        report = sim.run()
        assert report.completion_time_us > clean.completion_time_us
        assert report.fault_stats.recovered >= 1
        assert report.fault_stats.downtime_us == pytest.approx(800.0)
        kinds = [e.kind for e in report.trace]
        assert "fault:link-down" in kinds
        assert "fault:link-up" in kinds
        assert "recover:resume" in kinds

    def test_kill_without_recovery_raises_structured_stall(self, plan):
        edge = edge_of(plan)
        fp = FaultPlan().kill(edge, at_us=200.0)
        sim = Simulator(plan, injector=FaultInjector(fp))
        with pytest.raises(SimulationStall, match="never finished") as info:
            sim.run()
        stall = info.value.stall
        assert edge in stall.down_edges
        assert stall.unfinished > 0
        assert any(tb.wait_kind for tb in stall.tbs)
        assert isinstance(info.value, SimulationDeadlock)
        assert "down edges" in str(info.value)

    def test_kill_with_fallback_degrades_to_ring(self, plan, clean):
        fp = FaultPlan().kill(edge_of(plan), at_us=200.0)
        report = ResilientRunner(
            plan, fp, policy=make_policy("fallback")
        ).run()
        assert report.fault_stats.fallbacks == 1
        assert report.fault_stats.detected_stalls == 1
        assert report.algo_bandwidth > 0.0
        assert report.completion_time_us > clean.completion_time_us
        assert report.plan_name.endswith("ring-fallback")

    def test_tb_stall_delays_completion(self, plan, clean):
        fp = FaultPlan().stall_tb(rank=-1, tb_index=0, at_us=100.0,
                                  duration_us=1500.0)
        report = Simulator(plan, injector=FaultInjector(fp)).run()
        assert report.completion_time_us >= clean.completion_time_us
        assert "fault:tb-stall" in [e.kind for e in report.trace]

    def test_watchdog_disabled_falls_back_to_deadlock_check(self, plan):
        import copy

        quiet = copy.deepcopy(plan)
        quiet.config.watchdog_window_us = 0.0
        fp = FaultPlan().kill(edge_of(quiet), at_us=200.0)
        with pytest.raises(SimulationDeadlock) as info:
            Simulator(quiet, injector=FaultInjector(fp)).run()
        assert not isinstance(info.value, SimulationStall)

    def test_run_with_faults_is_deterministic(self, plan):
        first = run_with_faults(plan, "chaos", seed=3, recovery="retry")
        second = run_with_faults(plan, "chaos", seed=3, recovery="retry")
        assert (first.report.completion_time_us
                == second.report.completion_time_us)
        assert first.fault_plan.events == second.fault_plan.events

    def test_retry_policy_readmits_after_flap(self, plan, clean):
        window = plan.config.watchdog_window_us
        fp = FaultPlan().flap(edge_of(plan), at_us=200.0,
                              down_us=3.0 * window)
        report = ResilientRunner(
            plan, fp, policy=make_policy("retry")
        ).run()
        stats = report.fault_stats
        assert stats.detected_stalls >= 1
        assert stats.recovered >= 1
        assert report.completion_time_us > clean.completion_time_us


# ----------------------------------------------------------------------
# Topology support
# ----------------------------------------------------------------------


class TestDegradedCluster:
    def test_degraded_clones_and_scales(self, cluster):
        edge = "nv:out:0"
        degraded = cluster.degraded([edge], 0.25)
        assert degraded.edge_capacity(edge) == pytest.approx(
            0.25 * cluster.edge_capacity(edge)
        )
        other = "nv:out:1"
        assert degraded.edge_capacity(other) == cluster.edge_capacity(other)

    def test_degraded_rejects_bad_inputs(self, cluster):
        with pytest.raises(ValueError, match="positive"):
            cluster.degraded(["nv:out:0"], 0.0)
        with pytest.raises(KeyError):
            cluster.degraded(["no:such:edge"], 0.5)


# ----------------------------------------------------------------------
# Fault-trace ring buffer
# ----------------------------------------------------------------------


class TestFaultTraceRingBuffer:
    def _plan_with_cap(self, cluster, cap):
        backend = ResCCLBackend(
            max_microbatches=4, config=SimConfig(fault_trace_cap=cap)
        )
        return backend.plan(cluster, ring_allreduce(4), 8 * MB)

    def test_cap_evicts_oldest_and_counts_drops(self, cluster):
        sim = Simulator(self._plan_with_cap(cluster, 3))
        for i in range(10):
            sim.record_fault_event("fault:test", float(i), float(i + 1))
        report = sim.run()
        kept = [e for e in report.trace if e.kind == "fault:test"]
        assert len(kept) == 3
        assert report.trace_dropped == 7
        # Ring semantics: the oldest events are the ones evicted.
        assert [e.start_us for e in kept] == [7.0, 8.0, 9.0]

    def test_cap_zero_is_unbounded(self, cluster):
        sim = Simulator(self._plan_with_cap(cluster, 0))
        for i in range(10):
            sim.record_fault_event("fault:test", float(i), float(i + 1))
        report = sim.run()
        kept = [e for e in report.trace if e.kind == "fault:test"]
        assert len(kept) == 10
        assert report.trace_dropped == 0

    def test_default_chaos_run_reports_no_drops(self, plan):
        outcome = run_with_faults(plan, "link-flap", seed=0)
        assert outcome.report.trace_dropped == 0

"""Tests for the observability layer: span tracer and metrics registry."""

import pytest

from repro import MB, ResCCLBackend, multi_node
from repro.algorithms import hm_allreduce
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    collecting,
    current_registry,
    current_span,
    current_tracer,
    observe,
    span,
    tracing,
)
from repro.obs.spans import NULL_SPAN
from repro.runtime.simulator import simulate


class TestSpanTracer:
    def test_nesting(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                inner.set(items=3)
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].counters == {"items": 3}

    def test_durations_monotone(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration_us >= inner.duration_us >= 0.0
        assert outer.self_time_us >= 0.0

    def test_counters_and_incr(self):
        tracer = SpanTracer()
        with tracer.span("s") as sp:
            sp.incr("hits")
            sp.incr("hits", 2)
            sp.set(total=10)
        assert tracer.roots[0].counters == {"hits": 3, "total": 10}

    def test_attrs_in_render(self):
        tracer = SpanTracer()
        with tracer.span("compile", scheduler="hpds") as sp:
            sp.set(tasks=24)
        text = tracer.render()
        assert "compile" in text
        assert "scheduler=hpds" in text
        assert "tasks=24" in text

    def test_mismatched_exit_tolerated(self):
        tracer = SpanTracer()
        outer_ctx = tracer.span("outer")
        outer = outer_ctx.__enter__()
        tracer.span("inner").__enter__()
        # Closing the outer span unwinds the dangling inner one too.
        outer_ctx.__exit__(None, None, None)
        assert tracer.current() is NULL_SPAN
        assert outer.end_us >= outer.children[0].end_us

    def test_to_dict_round_trip(self):
        tracer = SpanTracer()
        with tracer.span("a", algo="ring") as sp:
            sp.set(n=1)
            with tracer.span("b"):
                pass
        (root,) = tracer.to_dict()
        assert root["name"] == "a"
        assert root["attrs"] == {"algo": "ring"}
        assert root["counters"] == {"n": 1}
        assert [c["name"] for c in root["children"]] == ["b"]

    def test_to_chrome_events(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner") as sp:
                sp.set(n=2)
        events = tracer.to_chrome_events(pid=9992)
        assert [e["name"] for e in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 9992
            assert event["dur"] >= 0
        assert events[1]["args"]["n"] == 2


class TestAmbientTracing:
    def test_disarmed_is_null(self):
        assert current_tracer() is None
        with span("anything") as sp:
            assert sp is NULL_SPAN
            sp.set(ignored=1)  # absorbed, no error
        assert current_span() is NULL_SPAN

    def test_armed_collects(self):
        with tracing() as tracer:
            with span("phase", key="v") as sp:
                sp.set(n=5)
                assert current_span() is sp
        assert current_tracer() is None
        assert tracer.roots[0].name == "phase"
        assert tracer.roots[0].counters == {"n": 5}

    def test_nested_arming_restores_previous(self):
        with tracing() as outer_tracer:
            with tracing() as inner_tracer:
                assert current_tracer() is inner_tracer
            assert current_tracer() is outer_tracer


class TestMetricsRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.inc("hits_total")
        reg.inc("hits_total", 2.0)
        assert reg.counter("hits_total").value() == pytest.approx(3.0)

    def test_labels_are_separate_series(self):
        reg = MetricsRegistry()
        reg.inc("bytes_total", 10, link="a")
        reg.inc("bytes_total", 5, link="b")
        counter = reg.counter("bytes_total")
        assert counter.value(link="a") == pytest.approx(10)
        assert counter.value(link="b") == pytest.approx(5)
        assert len(counter.samples()) == 2

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set("depth", 4)
        reg.set("depth", 2)
        assert reg.gauge("depth").value() == pytest.approx(2)

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        for value in (0.5, 5.0, 50.0, 5e6):
            reg.observe("lat_us", value)
        (key, series), = reg.histogram("lat_us").samples()
        assert key == ()
        assert series.count == 4
        assert series.sum == pytest.approx(0.5 + 5.0 + 50.0 + 5e6)
        assert series.min == pytest.approx(0.5)
        assert series.max == pytest.approx(5e6)
        assert series.bucket_counts[-1] == 1  # the +Inf overflow

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.observe("x", 1.0)

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", help="number of hits").inc(3, kind="a")
        reg.set("depth", 2.5)
        reg.observe("lat_us", 7.0)
        text = reg.to_prometheus()
        assert "# HELP hits_total number of hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{kind="a"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text
        assert 'lat_us_bucket{le="10"} 1' in text
        assert 'lat_us_bucket{le="+Inf"} 1' in text
        assert "lat_us_sum 7" in text
        assert "lat_us_count 1" in text

    def test_json_export(self):
        reg = MetricsRegistry()
        reg.inc("hits_total", 2, kind="x")
        reg.observe("lat_us", 3.0)
        out = reg.to_json()
        assert out["hits_total"]["type"] == "counter"
        assert out["hits_total"]["samples"] == [
            {"labels": {"kind": "x"}, "value": 2.0}
        ]
        histogram = out["lat_us"]
        assert histogram["type"] == "histogram"
        assert histogram["samples"][0]["count"] == 1

    def test_render_limit(self):
        reg = MetricsRegistry()
        for i in range(5):
            reg.inc(f"metric_{i}_total")
        text = reg.render(limit=2)
        assert "... 3 more series" in text

    def test_ambient_collecting(self):
        assert current_registry() is None
        with collecting() as reg:
            assert current_registry() is reg
            current_registry().inc("x")
        assert current_registry() is None
        assert reg.counter("x").value() == pytest.approx(1)


class TestPrometheusRendering:
    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.inc("events_total", path='C:\\tmp\\"x"\nnext')
        text = reg.to_prometheus()
        assert (
            'events_total{path="C:\\\\tmp\\\\\\"x\\"\\nnext"} 1' in text
        )
        # The rendered line stays on one physical line: the newline in
        # the label value travels as the two characters backslash-n.
        line = [ln for ln in text.splitlines()
                if ln.startswith("events_total")][0]
        assert "\n" not in line and "\\n" in line

    def test_escaping_round_trips_each_metacharacter(self):
        cases = {
            "back\\slash": "back\\\\slash",
            'quo"te': 'quo\\"te',
            "new\nline": "new\\nline",
            "plain": "plain",
        }
        for raw, escaped in cases.items():
            reg = MetricsRegistry()
            reg.set("g", 1.0, label=raw)
            assert f'g{{label="{escaped}"}} 1' in reg.to_prometheus()

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        # Default buckets are the decade ladder 1, 10, 100, ...
        for value in (0.5, 5.0, 50.0, 50.0, 5e8):
            reg.observe("lat_us", value)
        text = reg.to_prometheus()
        assert 'lat_us_bucket{le="1"} 1' in text
        assert 'lat_us_bucket{le="10"} 2' in text
        assert 'lat_us_bucket{le="100"} 4' in text
        # Every later bound keeps the running total; the overflow value
        # appears only in +Inf, which always equals the series count.
        assert 'lat_us_bucket{le="1000000"} 4' in text
        assert 'lat_us_bucket{le="+Inf"} 5' in text
        assert "lat_us_count 5" in text
        bucket_lines = [ln for ln in text.splitlines()
                        if ln.startswith("lat_us_bucket")]
        counts = [float(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
        assert counts == sorted(counts)  # cumulativity, line by line

    def test_series_order_stable_across_merge_order(self):
        def populate(registry, order):
            for kind in order:
                registry.inc("reqs_total", 1, kind=kind)
                registry.set("depth", 1.0, kind=kind)
                registry.observe("lat_us", 5.0, kind=kind)

        forward, backward = MetricsRegistry(), MetricsRegistry()
        populate(forward, ["a", "b", "c"])
        populate(backward, ["c", "b", "a"])
        assert forward.to_prometheus() == backward.to_prometheus()

    def test_series_order_stable_across_merge_json(self):
        shard_one, shard_two = MetricsRegistry(), MetricsRegistry()
        shard_one.inc("reqs_total", 2, worker="1")
        shard_one.observe("lat_us", 3.0, worker="1")
        shard_two.inc("reqs_total", 5, worker="0")
        shard_two.observe("lat_us", 7.0, worker="0")
        shard_two.inc("extra_total")

        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_json(shard_one.to_json())
        ab.merge_json(shard_two.to_json())
        ba.merge_json(shard_two.to_json())
        ba.merge_json(shard_one.to_json())
        assert ab.to_prometheus() == ba.to_prometheus()
        text = ab.to_prometheus()
        assert 'reqs_total{worker="0"} 5' in text
        assert 'reqs_total{worker="1"} 2' in text
        # Families render in name order, series in label order.
        families = [ln.split(" ")[2] for ln in text.splitlines()
                    if ln.startswith("# TYPE ")]
        assert families == sorted(families)

    def test_merge_json_accumulates_histograms(self):
        shard = MetricsRegistry()
        shard.observe("lat_us", 50.0)
        total = MetricsRegistry()
        total.observe("lat_us", 5.0)
        total.merge_json(shard.to_json())
        series = total.histogram("lat_us").series[()]
        assert series.count == 2
        assert series.sum == pytest.approx(55.0)
        assert 'lat_us_bucket{le="+Inf"} 2' in total.to_prometheus()


@pytest.fixture(scope="module")
def plan():
    return ResCCLBackend(max_microbatches=2).plan(
        multi_node(2, 4), hm_allreduce(2, 4), 16 * MB
    )


class TestRuntimeIntegration:
    def test_simulator_publishes_when_armed(self, plan):
        with observe() as obs:
            report = simulate(plan)
        names = obs.registry.names()
        assert "sim_flows_started_total" in names
        assert "sim_flows_completed_total" in names
        assert "sim_link_bytes_total" in names
        assert "sim_completion_time_us" in names
        assert "net_flows_admitted_total" in names
        completion = obs.registry.gauge("sim_completion_time_us").value()
        assert completion == pytest.approx(report.completion_time_us)
        # The simulate() wrapper opened a span with the plan name.
        sim_spans = [s for s in obs.tracer.roots if s.name == "simulate"]
        assert len(sim_spans) == 1
        assert sim_spans[0].counters["completion_time_us"] == pytest.approx(
            report.completion_time_us
        )

    def test_pipeline_spans_cover_phases(self):
        cluster = multi_node(2, 4)
        with observe() as obs:
            ResCCLBackend(max_microbatches=2).plan(
                cluster, hm_allreduce(2, 4), 16 * MB
            )
        (plan_span,) = obs.tracer.roots
        assert plan_span.name == "plan"
        names = {c.name for c in plan_span.children}
        assert "compile" in names
        assert "kernelgen" in names
        (compile_span,) = [
            c for c in plan_span.children if c.name == "compile"
        ]
        phases = [c.name for c in compile_span.children]
        assert phases == ["parsing", "analysis", "scheduling", "lowering"]

    def test_disarmed_run_identical(self, plan):
        baseline = simulate(plan)
        with observe():
            armed = simulate(plan)
        again = simulate(plan)
        assert armed.completion_time_us == baseline.completion_time_us
        assert again.completion_time_us == baseline.completion_time_us
        assert armed.completion_order == baseline.completion_order

    def test_fault_harness_publishes(self, plan):
        from repro.faults import run_with_faults

        with observe() as obs:
            outcome = run_with_faults(plan, "link-flap", seed=1)
        stats = outcome.report.fault_stats
        assert stats is not None and stats.injected > 0
        registry = obs.registry
        assert registry.counter("fault_injected_total").value() == (
            pytest.approx(stats.injected)
        )
        assert "sim_fault_events_total" in registry.names()

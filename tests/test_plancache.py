"""The content-addressed compiled-plan cache (repro.core.plancache)."""

import pickle
import threading
import time

import pytest

from repro.algorithms import build_algorithm
from repro.core import ResCCLCompiler
from repro.core.plancache import (
    CACHE_FORMAT_VERSION,
    PlanCache,
    configure,
    get_cache,
)
from repro.obs.metrics import collecting
from repro.topology import Cluster


@pytest.fixture
def cluster():
    return Cluster(nodes=2, gpus_per_node=4)


@pytest.fixture
def program(cluster):
    return build_algorithm("ring-allreduce", cluster)


class TestMemoTier:
    def test_hit_returns_same_object(self, cluster, program):
        cache = PlanCache()
        compiler = ResCCLCompiler()
        first = cache.compile(compiler, program, cluster)
        second = cache.compile(compiler, program, cluster)
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_key_covers_source(self, cluster, program):
        cache = PlanCache()
        compiler = ResCCLCompiler()
        other = build_algorithm("ring-allgather", cluster)
        a = cache.compile(compiler, program, cluster)
        b = cache.compile(compiler, other, cluster)
        assert a is not b
        assert cache.stats.misses == 2

    def test_key_covers_scheduler(self, cluster, program):
        cache = PlanCache()
        a = cache.compile(ResCCLCompiler(scheduler="hpds"), program, cluster)
        b = cache.compile(ResCCLCompiler(scheduler="rr"), program, cluster)
        assert a is not b
        assert a.scheduler == "hpds" and b.scheduler == "rr"

    def test_key_covers_topology(self, cluster, program):
        cache = PlanCache()
        compiler = ResCCLCompiler()
        degraded = cluster.degraded([cluster.edges[0]], 0.5)
        a = cache.compile(compiler, program, cluster)
        b = cache.compile(compiler, program, degraded)
        assert a is not b

    def test_equivalent_clusters_share_entry(self, program):
        # Two distinct-but-identical Cluster objects hash to one key —
        # exactly the aliasing the old id()-keyed cache could not see.
        cache = PlanCache()
        compiler = ResCCLCompiler()
        a = cache.compile(compiler, program, Cluster(2, 4))
        b = cache.compile(compiler, program, Cluster(2, 4))
        assert a is b

    def test_source_and_program_alias(self, cluster, program):
        cache = PlanCache()
        compiler = ResCCLCompiler()
        a = cache.compile(compiler, program, cluster)
        b = cache.compile(compiler, program.to_source(), cluster)
        assert a is b

    def test_lru_eviction(self, cluster):
        cache = PlanCache(capacity=1)
        compiler = ResCCLCompiler()
        ar = build_algorithm("ring-allreduce", cluster)
        ag = build_algorithm("ring-allgather", cluster)
        cache.compile(compiler, ar, cluster)
        cache.compile(compiler, ag, cluster)  # evicts ar
        assert len(cache) == 1
        cache.compile(compiler, ar, cluster)
        assert cache.stats.misses == 3

    def test_frontend_reuse_across_schedulers(self, cluster, program):
        cache = PlanCache()
        a = cache.compile(ResCCLCompiler(scheduler="hpds"), program, cluster)
        b = cache.compile(ResCCLCompiler(scheduler="rr"), program, cluster)
        assert cache.stats.frontend_hits == 1
        # The reused front end is the same parsed program + DAG.
        assert b.program is a.program
        assert b.dag is a.dag
        assert b.phase_times_us["parsing"] == 0.0
        assert b.phase_times_us["analysis"] == 0.0


class TestDiskTier:
    def test_round_trip(self, tmp_path, cluster, program):
        compiler = ResCCLCompiler()
        writer = PlanCache(cache_dir=tmp_path)
        compiled = writer.compile(compiler, program, cluster)
        assert writer.stats.disk_writes == 1
        assert list(tmp_path.glob("*.pkl"))

        reader = PlanCache(cache_dir=tmp_path)
        loaded = reader.compile(compiler, program, cluster)
        assert reader.stats.disk_hits == 1
        assert reader.stats.hits == 1
        assert loaded is not compiled  # new object, same content
        assert loaded.scheduler == compiled.scheduler
        assert loaded.pipeline.task_count == compiled.pipeline.task_count
        assert len(loaded.assignments) == len(compiled.assignments)

    def test_corrupt_entry_is_a_miss(self, tmp_path, cluster, program):
        compiler = ResCCLCompiler()
        writer = PlanCache(cache_dir=tmp_path)
        writer.compile(compiler, program, cluster)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        reader = PlanCache(cache_dir=tmp_path)
        result = reader.compile(compiler, program, cluster)
        assert result is not None
        assert reader.stats.disk_hits == 0
        assert reader.stats.misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path, cluster, program):
        compiler = ResCCLCompiler()
        writer = PlanCache(cache_dir=tmp_path)
        compiled = writer.compile(compiler, program, cluster)
        for entry in tmp_path.glob("*.pkl"):
            key = entry.stem
            entry.write_bytes(
                pickle.dumps(
                    {
                        "version": CACHE_FORMAT_VERSION + 1,
                        "key": key,
                        "result": compiled,
                    }
                )
            )
        reader = PlanCache(cache_dir=tmp_path)
        reader.compile(compiler, program, cluster)
        assert reader.stats.disk_hits == 0
        assert reader.stats.misses == 1


class TestDiskQuarantine:
    def _poison(self, tmp_path, cluster, program):
        compiler = ResCCLCompiler()
        writer = PlanCache(cache_dir=tmp_path)
        writer.compile(compiler, program, cluster)
        entries = list(tmp_path.glob("*.pkl"))
        assert entries
        for entry in entries:
            entry.write_bytes(b"not a pickle")
        return compiler, entries

    def test_corrupt_entry_is_quarantined(self, tmp_path, cluster, program):
        compiler, entries = self._poison(tmp_path, cluster, program)
        reader = PlanCache(cache_dir=tmp_path)
        result = reader.compile(compiler, program, cluster)
        assert result is not None  # recompiled, not crashed
        assert reader.stats.disk_corrupt == 1
        for entry in entries:
            # The poisoned bytes moved aside for post-mortem inspection
            # (the recompile then repopulates the .pkl slot).
            quarantined = entry.with_suffix(".corrupt")
            assert quarantined.exists()
            assert quarantined.read_bytes() == b"not a pickle"

    def test_quarantined_slot_is_rewritten(self, tmp_path, cluster, program):
        compiler, entries = self._poison(tmp_path, cluster, program)
        reader = PlanCache(cache_dir=tmp_path)
        reader.compile(compiler, program, cluster)
        # The recompile repopulated the .pkl slot next to the .corrupt.
        for entry in entries:
            assert entry.exists()
            assert entry.with_suffix(".corrupt").exists()
        fresh = PlanCache(cache_dir=tmp_path)
        fresh.compile(compiler, program, cluster)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.disk_corrupt == 0

    def test_corrupt_counter_published(self, tmp_path, cluster, program):
        compiler, _ = self._poison(tmp_path, cluster, program)
        reader = PlanCache(cache_dir=tmp_path)
        with collecting() as registry:
            reader.compile(compiler, program, cluster)
        assert registry.counter("compile_cache_corrupt_total").value() == 1

    def test_key_mismatch_is_quarantined(self, tmp_path, cluster, program):
        compiler = ResCCLCompiler()
        writer = PlanCache(cache_dir=tmp_path)
        compiled = writer.compile(compiler, program, cluster)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(pickle.dumps({
                "version": CACHE_FORMAT_VERSION,
                "key": "someone-else",
                "result": compiled,
            }))
        reader = PlanCache(cache_dir=tmp_path)
        reader.compile(compiler, program, cluster)
        assert reader.stats.disk_corrupt == 1
        assert list(tmp_path.glob("*.corrupt"))

    def test_summary_reports_quarantines(self, tmp_path, cluster, program):
        compiler, _ = self._poison(tmp_path, cluster, program)
        reader = PlanCache(cache_dir=tmp_path)
        assert "quarantined" not in reader.stats.summary()
        reader.compile(compiler, program, cluster)
        assert "1 corrupt entr" in reader.stats.summary()


class TestDiskLocking:
    """Concurrent disk-tier mutations of one key (the fcntl entry lock).

    Unlocked, two same-pid writers collide on the shared tmp name (one
    renames a file the other is still writing -> a torn ``.pkl`` that
    gets quarantined on the next read), and a quarantine can sweep a
    concurrent writer's fresh good entry into ``.corrupt``.  The
    per-key advisory lock serializes the mutations; this hammers the
    old races and asserts the entry stays clean and readable.
    """

    def test_two_writers_one_key_stay_clean(self, tmp_path, cluster,
                                            program):
        compiler = ResCCLCompiler()
        cache = PlanCache(cache_dir=tmp_path)
        compiled = cache.compile(compiler, program, cluster)
        path = next(tmp_path.glob("*.pkl"))
        key = path.stem
        barrier = threading.Barrier(3)

        def writer():
            barrier.wait()
            for _ in range(20):
                cache._disk_put(key, compiled)

        def deleter():
            # Forces real rewrites (the content-addressed skip would
            # otherwise make every later put a no-op) and interleaves
            # replace/unlink with in-flight writes.
            barrier.wait()
            for _ in range(20):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
                time.sleep(0.001)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=writer),
                   threading.Thread(target=deleter)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        cache._disk_put(key, compiled)  # settle: the entry exists again
        assert not list(tmp_path.glob("*.corrupt"))
        assert not list(tmp_path.glob("*.tmp.*"))  # no torn leftovers
        assert list(tmp_path.glob("*.lock"))  # the lock file is real
        fresh = PlanCache(cache_dir=tmp_path)
        restored = fresh._disk_get(key)
        assert restored is not None
        assert fresh.stats.disk_corrupt == 0
        assert restored.scheduler == compiled.scheduler

    def test_quarantine_and_rewrite_serialize(self, tmp_path, cluster,
                                              program):
        compiler = ResCCLCompiler()
        cache = PlanCache(cache_dir=tmp_path)
        compiled = cache.compile(compiler, program, cluster)
        path = next(tmp_path.glob("*.pkl"))
        key = path.stem
        barrier = threading.Barrier(2)

        def quarantiner():
            barrier.wait()
            for _ in range(20):
                cache._quarantine(path)

        def writer():
            barrier.wait()
            for _ in range(20):
                cache._disk_put(key, compiled)

        threads = [threading.Thread(target=quarantiner),
                   threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Whatever interleaving happened, a final write must land a
        # readable entry (the quarantine never renames a half-written
        # file, and never wins against a fresh replacement mid-write).
        cache._disk_put(key, compiled)
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh._disk_get(key) is not None
        assert fresh.stats.disk_corrupt == 0


class TestFingerprint:
    def test_stable_for_equivalent_clusters(self):
        assert Cluster(2, 4).fingerprint() == Cluster(2, 4).fingerprint()

    def test_shape_sensitivity(self):
        assert Cluster(2, 4).fingerprint() != Cluster(4, 4).fingerprint()
        assert Cluster(2, 4).fingerprint() != Cluster(2, 8).fingerprint()

    def test_degraded_differs(self):
        cluster = Cluster(2, 4)
        degraded = cluster.degraded([cluster.edges[0]], 0.5)
        assert cluster.fingerprint() != degraded.fingerprint()


class TestProcessWideCache:
    def test_configure_and_disable(self, tmp_path, cluster, program):
        compiler = ResCCLCompiler()
        try:
            cache = configure(cache_dir=tmp_path)
            assert get_cache() is cache
            cache.compile(compiler, program, cluster)
            assert cache.stats.disk_writes == 1

            disabled = configure(enabled=False)
            a = disabled.compile(compiler, program, cluster)
            b = disabled.compile(compiler, program, cluster)
            assert a is not b
            assert disabled.stats.hits == 0
        finally:
            configure()  # restore an ordinary in-process cache

    def test_hits_published_to_ambient_registry(self, cluster, program):
        cache = PlanCache()
        compiler = ResCCLCompiler()
        with collecting() as registry:
            cache.compile(compiler, program, cluster)
            cache.compile(compiler, program, cluster)
        assert registry.counter("compile_cache_misses_total").value() == 1
        assert registry.counter("compile_cache_hits_total").value() == 1

"""Tests for runtime extensions: protocols, background traffic, replay."""

import pytest

from repro import MB, ResCCLBackend, multi_node, simulate
from repro.algorithms import hm_allgather, hm_allreduce, ring_allgather
from repro.runtime.memory import execute_sequential, verify_completion_order
from repro.runtime.plan import Protocol, SimConfig


@pytest.fixture(scope="module")
def cluster():
    return multi_node(2, 4)


@pytest.fixture(scope="module")
def program():
    return hm_allreduce(2, 4)


class TestProtocols:
    def test_factors(self):
        assert Protocol.SIMPLE.latency_factor == 1.0
        assert Protocol.SIMPLE.bandwidth_efficiency == 1.0
        assert Protocol.LL.latency_factor == 0.5
        assert Protocol.LL.bandwidth_efficiency == 0.5
        assert Protocol.LL128.bandwidth_efficiency == pytest.approx(0.9375)

    def test_ll_saves_latency_on_tiny_buffers(self, cluster, program):
        simple = ResCCLBackend(
            max_microbatches=4, config=SimConfig(protocol=Protocol.SIMPLE)
        )
        ll = ResCCLBackend(
            max_microbatches=4, config=SimConfig(protocol=Protocol.LL)
        )
        tiny = 256 * 1024.0  # deep latency regime
        simple_report = simulate(simple.plan(cluster, program, tiny))
        ll_report = simulate(ll.plan(cluster, program, tiny))
        assert ll_report.completion_time_us < simple_report.completion_time_us

    def test_simple_wins_at_scale(self, cluster, program):
        simple = ResCCLBackend(
            max_microbatches=8, config=SimConfig(protocol=Protocol.SIMPLE)
        )
        ll = ResCCLBackend(
            max_microbatches=8, config=SimConfig(protocol=Protocol.LL)
        )
        big = 256 * MB
        assert (
            simulate(simple.plan(cluster, program, big)).algo_bandwidth
            > simulate(ll.plan(cluster, program, big)).algo_bandwidth
        )

    def test_default_protocol_is_simple(self):
        assert SimConfig().protocol is Protocol.SIMPLE


class TestBackgroundTraffic:
    def test_congestor_slows_completion(self, cluster, program):
        backend = ResCCLBackend(max_microbatches=4)
        clean = simulate(backend.plan(cluster, program, 32 * MB))
        congested = simulate(
            backend.plan(cluster, program, 32 * MB),
            background_traffic=[
                (("nic:out:0:0",), 20000.0),
                (("nic:out:0:1",), 20000.0),
                (("nic:in:1:0",), 20000.0),
                (("nic:in:1:1",), 20000.0),
            ],
        )
        assert congested.completion_time_us > clean.completion_time_us

    def test_congestor_on_unused_edge_is_harmless(self, cluster):
        program = hm_allgather(2, 4)
        backend = ResCCLBackend(max_microbatches=4)
        clean = simulate(backend.plan(cluster, program, 32 * MB))
        # HM AllGather never uses rank 0's NVLink ingress from itself...
        # use an intra edge of a rank pair that carries no flows: there
        # is none guaranteed, so use a tiny-rate congestor instead and
        # check the slowdown is bounded.
        congested = simulate(
            backend.plan(cluster, program, 32 * MB),
            background_traffic=[(("nic:out:0:0",), 1.0)],
        )
        assert congested.completion_time_us < 1.25 * clean.completion_time_us

    def test_unknown_edge_rejected(self, cluster, program):
        backend = ResCCLBackend(max_microbatches=2)
        with pytest.raises(KeyError):
            simulate(
                backend.plan(cluster, program, 8 * MB),
                background_traffic=[(("nic:out:9:9",), 1000.0)],
            )


class TestCompletionReplay:
    def test_completion_order_recorded(self, cluster, program):
        plan = ResCCLBackend(max_microbatches=2).plan(cluster, program, 16 * MB)
        report = simulate(plan)
        assert len(report.completion_order) == len(plan.dag) * 2

    def test_sequential_execution_valid_order(self):
        program = ring_allgather(4)
        order = list(range(len(program.transfers)))
        # Program order for ring AllGather is step-sorted per rank but
        # not globally step-sorted; sort by step to get a legal order.
        order.sort(key=lambda i: program.transfers[i].step)
        result = verify_completion_order(program, order)
        assert result.ok, result.errors[:3]

    def test_sequential_execution_rejects_bad_order(self):
        program = ring_allgather(4)
        # Reverse order sends data before it exists.
        order = sorted(
            range(len(program.transfers)),
            key=lambda i: -program.transfers[i].step,
        )
        result = verify_completion_order(program, order)
        assert not result.ok

    def test_sequential_execution_rejects_partial_order(self):
        program = ring_allgather(4)
        _, errors = execute_sequential(program, [0, 1, 2])
        assert any("covers" in e for e in errors)

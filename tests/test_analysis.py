"""Tests for the analysis/aggregation helpers and SimReport metrics."""

import pytest

from repro import MB, MSCCLBackend, ResCCLBackend, multi_node, simulate
from repro.algorithms import hm_allreduce
from repro.analysis import (
    TBUtilizationRow,
    compare_bandwidth,
    format_table,
    tb_breakdown,
    worst_idle_tb,
)
from repro.runtime.metrics import LinkStats, SimReport, TBStats
from repro.runtime.plan import ExecMode


@pytest.fixture(scope="module")
def reports():
    cluster = multi_node(2, 4)
    program = hm_allreduce(2, 4)
    return {
        "MSCCL": simulate(
            MSCCLBackend(max_microbatches=4).plan(cluster, program, 32 * MB)
        ),
        "ResCCL": simulate(
            ResCCLBackend(max_microbatches=4).plan(cluster, program, 32 * MB)
        ),
    }


class TestTBStats:
    def test_lifetime_with_early_release(self):
        stats = TBStats(rank=0, tb_index=0, label="x", nwarps=16)
        stats.busy = 50.0
        stats.release_time = 80.0
        assert stats.lifetime(100.0, early_release=True) == 80.0
        assert stats.lifetime(100.0, early_release=False) == 100.0

    def test_idle_fraction(self):
        stats = TBStats(rank=0, tb_index=0, label="x", nwarps=16)
        stats.busy = 25.0
        stats.overhead = 25.0
        stats.release_time = 100.0
        assert stats.idle_fraction(100.0, True) == pytest.approx(0.5)
        assert stats.busy_fraction(100.0, True) == pytest.approx(0.5)

    def test_zero_lifetime(self):
        stats = TBStats(rank=0, tb_index=0, label="x", nwarps=16)
        assert stats.idle_fraction(0.0, False) == 0.0


class TestSimReportAggregates:
    def test_bandwidth_units(self, reports):
        report = reports["ResCCL"]
        assert report.algo_bandwidth_gbps == pytest.approx(
            report.algo_bandwidth / 1000.0
        )

    def test_early_release_follows_mode(self, reports):
        assert reports["ResCCL"].early_release  # kernel mode
        assert not reports["MSCCL"].early_release  # interpreter mode

    def test_idle_bounds(self, reports):
        for report in reports.values():
            assert 0.0 <= report.avg_idle_fraction() <= 1.0
            assert report.avg_idle_fraction() <= report.max_idle_fraction()

    def test_link_utilization_bounds(self, reports):
        for report in reports.values():
            assert 0.0 < report.link_utilization() <= 1.0

    def test_summary_readable(self, reports):
        text = reports["ResCCL"].summary()
        assert "GB/s" in text
        assert "TBs" in text

    def test_link_stats_have_bytes(self, reports):
        report = reports["ResCCL"]
        total = sum(ls.bytes_moved for ls in report.link_stats.values())
        assert total > 0

    def test_empty_report_degenerates_gracefully(self):
        report = SimReport(
            plan_name="empty",
            mode=ExecMode.KERNEL,
            completion_time_us=0.0,
            total_bytes=0.0,
        )
        assert report.algo_bandwidth == 0.0
        assert report.link_utilization() == 0.0
        assert report.max_idle_fraction() == 0.0


class TestBreakdowns:
    def test_breakdown_covers_all_tbs(self, reports):
        for report in reports.values():
            assert len(tb_breakdown(report)) == report.tb_count()

    def test_interpreter_tbs_have_tail(self, reports):
        entries = tb_breakdown(reports["MSCCL"])
        assert any(e.tail_us > 0 for e in entries)

    def test_kernel_tbs_release_early(self, reports):
        entries = tb_breakdown(reports["ResCCL"])
        assert all(e.tail_us == 0.0 for e in entries)

    def test_lifetime_decomposition(self, reports):
        for report in reports.values():
            end = report.completion_time_us
            for entry in tb_breakdown(report):
                assert entry.lifetime_us <= end + 1e-6
                assert 0.0 <= entry.idle_fraction <= 1.0

    def test_worst_idle_tb(self, reports):
        worst = worst_idle_tb(reports["MSCCL"])
        entries = tb_breakdown(reports["MSCCL"])
        assert worst.idle_fraction == max(e.idle_fraction for e in entries)

    def test_worst_idle_requires_tbs(self):
        empty = SimReport(
            plan_name="empty",
            mode=ExecMode.KERNEL,
            completion_time_us=1.0,
            total_bytes=1.0,
        )
        with pytest.raises(ValueError):
            worst_idle_tb(empty)


class TestComparisons:
    def test_compare_bandwidth(self, reports):
        speedups = compare_bandwidth(reports, baseline="MSCCL")
        assert speedups["MSCCL"] == pytest.approx(1.0)
        assert speedups["ResCCL"] > 0

    def test_compare_requires_known_baseline(self, reports):
        with pytest.raises(KeyError):
            compare_bandwidth(reports, baseline="HCCL")

    def test_utilization_row(self, reports):
        row = TBUtilizationRow.from_report(reports["ResCCL"])
        assert row.backend == "ResCCL"
        assert row.tbs_per_rank == reports["ResCCL"].max_tbs_per_rank()
        assert len(row.cells()) == 5


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all rows equal width

    def test_format_table_indent(self):
        text = format_table(["h"], [["x"]], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())

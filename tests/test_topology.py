"""Tests for the cluster topology substrate."""

import pytest

from repro.topology import (
    Cluster,
    a100_profile,
    gbits_to_bytes_per_us,
    gbps_to_bytes_per_us,
    multi_node,
    profile_by_name,
    single_node,
    v100_profile,
)


class TestUnits:
    def test_gbps_conversion(self):
        assert gbps_to_bytes_per_us(1.0) == 1000.0

    def test_gbits_conversion(self):
        # 200 Gbit/s == 25 GB/s == 25000 bytes/us.
        assert gbits_to_bytes_per_us(200.0) == 25000.0


class TestProfiles:
    def test_a100_nic_matches_testbed(self):
        profile = a100_profile()
        assert profile.nic.bandwidth == pytest.approx(25000.0)
        assert profile.nvlink.bandwidth == pytest.approx(300000.0)

    def test_inter_latency_ratio(self):
        profile = a100_profile()
        assert profile.nic.latency_us >= 2.5 * profile.nvlink.latency_us

    def test_v100_slower_than_a100(self):
        v100, a100 = v100_profile(), a100_profile()
        assert v100.nic.bandwidth < a100.nic.bandwidth
        assert v100.nvlink.bandwidth < a100.nvlink.bandwidth

    def test_profile_by_name(self):
        assert profile_by_name("a100").name == "A100"
        assert profile_by_name("V100").name == "V100"

    def test_profile_by_name_unknown(self):
        with pytest.raises(ValueError, match="unknown GPU profile"):
            profile_by_name("H100")

    def test_tb_copy_bandwidth_scales_with_warps(self):
        profile = a100_profile()
        assert profile.tb_copy_bandwidth(16) == pytest.approx(
            profile.nic.bandwidth
        )
        assert profile.tb_copy_bandwidth(4) == pytest.approx(
            profile.nic.bandwidth / 4
        )

    def test_tb_copy_bandwidth_rejects_zero_warps(self):
        with pytest.raises(ValueError):
            a100_profile().tb_copy_bandwidth(0)

    def test_link_transfer_time(self):
        profile = a100_profile()
        # 25000 bytes at 25000 B/us == 1 us plus latency.
        expected = profile.nic.latency_us + 1.0
        assert profile.nic.transfer_time(25000.0) == pytest.approx(expected)


class TestClusterShape:
    def test_world_size(self):
        assert multi_node(4, 8).world_size == 32
        assert single_node(8).world_size == 8

    def test_rank_arithmetic(self):
        cluster = multi_node(2, 8)
        assert cluster.node_of(0) == 0
        assert cluster.node_of(8) == 1
        assert cluster.local_index(11) == 3
        assert cluster.same_node(0, 7)
        assert not cluster.same_node(7, 8)

    def test_nic_sharing(self):
        # Paper: every two GPUs share one NIC (8 GPUs, 4 NICs).
        cluster = multi_node(2, 8)
        assert cluster.nics_per_node == 4
        assert cluster.nic_of(0) == cluster.nic_of(1) == 0
        assert cluster.nic_of(6) == cluster.nic_of(7) == 3

    def test_rack_assignment(self):
        cluster = Cluster(nodes=4, gpus_per_node=8, nodes_per_rack=2)
        assert cluster.rack_of(0) == 0
        assert cluster.rack_of(8) == 0
        assert cluster.rack_of(16) == 1

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            Cluster(nodes=0, gpus_per_node=8)
        with pytest.raises(ValueError):
            Cluster(nodes=1, gpus_per_node=0)
        with pytest.raises(ValueError):
            Cluster(nodes=1, gpus_per_node=8, nics_per_node=3)

    def test_odd_gpu_count_gets_divisor_nics(self):
        cluster = Cluster(nodes=1, gpus_per_node=5)
        assert 5 % cluster.nics_per_node == 0

    def test_rank_bounds_checked(self):
        cluster = single_node(4)
        with pytest.raises(ValueError):
            cluster.node_of(4)
        with pytest.raises(ValueError):
            cluster.node_of(-1)


class TestRouting:
    def test_intra_path_uses_nvlink_ports(self):
        cluster = multi_node(2, 8)
        path = cluster.path(0, 3)
        assert path.edges == ("nv:out:0", "nv:in:3")
        assert path.bottleneck_bandwidth == cluster.profile.nvlink.bandwidth

    def test_inter_path_uses_nics(self):
        cluster = multi_node(2, 8)
        path = cluster.path(0, 9)
        assert path.edges == ("nic:out:0:0", "nic:in:1:0")
        assert path.bottleneck_bandwidth == cluster.profile.nic.bandwidth

    def test_inter_latency_exceeds_intra(self):
        cluster = multi_node(2, 8)
        assert cluster.path(0, 8).latency_us >= 2.5 * cluster.path(0, 1).latency_us

    def test_cross_rack_adds_latency(self):
        cluster = Cluster(nodes=4, gpus_per_node=8, nodes_per_rack=2)
        same_rack = cluster.path(0, 8)
        cross_rack = cluster.path(0, 16)
        assert cross_rack.latency_us > same_rack.latency_us

    def test_self_path_rejected(self):
        with pytest.raises(ValueError):
            single_node(4).path(2, 2)

    def test_path_cached(self):
        cluster = single_node(4)
        assert cluster.path(0, 1) is cluster.path(0, 1)

    def test_link_name_intra_is_pairwise(self):
        cluster = multi_node(2, 8)
        assert cluster.link_name(0, 1) != cluster.link_name(1, 0)
        assert cluster.link_name(0, 1) != cluster.link_name(0, 2)

    def test_link_name_inter_shared_by_nic(self):
        cluster = multi_node(2, 8)
        # GPUs 0 and 1 share NIC 0: their flows to node 1 share a link.
        assert cluster.link_name(0, 8) == cluster.link_name(1, 9)
        assert cluster.link_name(0, 8) != cluster.link_name(2, 8)

    def test_edge_capacity_lookup(self):
        cluster = single_node(2)
        assert cluster.edge_capacity("nv:out:0") == pytest.approx(300000.0)
        with pytest.raises(KeyError):
            cluster.edge_capacity("bogus")

    def test_transfer_time_on_path(self):
        cluster = multi_node(2, 8)
        path = cluster.path(0, 8)
        assert path.transfer_time(25000.0) == pytest.approx(
            path.latency_us + 1.0
        )


class TestGraphExport:
    def test_graph_has_all_rank_pairs(self):
        cluster = multi_node(2, 4)
        graph = cluster.to_graph()
        n = cluster.world_size
        assert graph.number_of_nodes() == n
        assert graph.number_of_edges() == n * (n - 1)

    def test_graph_attributes(self):
        cluster = multi_node(2, 4)
        graph = cluster.to_graph()
        assert graph[0][1]["intra"] is True
        assert graph[0][4]["intra"] is False
        assert graph[0][4]["bandwidth"] == cluster.profile.nic.bandwidth

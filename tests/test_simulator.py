"""Tests for the discrete-event runtime simulator."""

import pytest

from repro.algorithms import hm_allreduce, ring_allgather
from repro.baselines import MSCCLBackend, NCCLBackend
from repro.ir.dag import build_dag
from repro.ir.task import Collective
from repro.runtime.plan import (
    MB,
    ExecMode,
    ExecutionPlan,
    Invocation,
    Side,
    SimConfig,
    TBProgram,
)
from repro.runtime.simulator import SimulationDeadlock, Simulator, simulate
from repro.topology import multi_node, single_node


def p2p_plan(chunk_bytes=1_048_576.0, n_mb=4, nwarps=16, mode=ExecMode.KERNEL,
             config=None, cluster=None):
    """Minimal plan: rank 0 streams its chunk to rank 1, n_mb times."""
    cluster = cluster or single_node(2)
    program = ring_allgather(2)
    dag = build_dag(program.transfers, cluster)
    send_task = next(t for t in dag.tasks if t.src == 0)
    recv_task = send_task
    other = next(t for t in dag.tasks if t.src == 1)
    tbs = [
        TBProgram(0, 0, [Invocation(send_task.task_id, Side.SEND, mb) for mb in range(n_mb)], nwarps),
        TBProgram(1, 0, [Invocation(recv_task.task_id, Side.RECV, mb) for mb in range(n_mb)], nwarps),
        TBProgram(1, 1, [Invocation(other.task_id, Side.SEND, mb) for mb in range(n_mb)], nwarps),
        TBProgram(0, 1, [Invocation(other.task_id, Side.RECV, mb) for mb in range(n_mb)], nwarps),
    ]
    return ExecutionPlan(
        name="p2p",
        cluster=cluster,
        program=program,
        dag=dag,
        n_microbatches=n_mb,
        chunk_bytes=chunk_bytes,
        tb_programs=tbs,
        mode=mode,
        config=config or SimConfig(),
    )


class TestBasicExecution:
    def test_p2p_completes(self):
        report = simulate(p2p_plan())
        assert report.completion_time_us > 0
        assert report.total_bytes > 0

    def test_p2p_time_close_to_alpha_beta(self):
        """One stream of n chunks should take about n * c / bw."""
        n_mb, chunk = 8, 4 * MB
        plan = p2p_plan(chunk_bytes=chunk, n_mb=n_mb)
        report = simulate(plan)
        nvlink = plan.cluster.profile.nvlink
        tb_bw = plan.cluster.profile.tb_copy_bandwidth(16)
        lower = n_mb * chunk / tb_bw
        assert report.completion_time_us >= lower
        assert report.completion_time_us <= 1.6 * lower + 200.0

    def test_bandwidth_grows_with_chunk_size(self):
        small = simulate(p2p_plan(chunk_bytes=64 * 1024.0))
        large = simulate(p2p_plan(chunk_bytes=4 * MB))
        assert large.algo_bandwidth > small.algo_bandwidth

    def test_interpreter_slower_than_kernel(self):
        kernel = simulate(p2p_plan(mode=ExecMode.KERNEL, n_mb=16))
        interp = simulate(p2p_plan(mode=ExecMode.INTERPRETER, n_mb=16))
        assert interp.completion_time_us > kernel.completion_time_us

    def test_interpreter_overhead_recorded(self):
        report = simulate(p2p_plan(mode=ExecMode.INTERPRETER, n_mb=4))
        sender = report.tb_stats[0]
        # Four invocations, each paying the decode cost.
        assert sender.overhead == pytest.approx(4 * SimConfig().interp_cost_us)

    def test_kernel_load_paid_once(self):
        report = simulate(p2p_plan(mode=ExecMode.KERNEL, n_mb=4))
        sender = report.tb_stats[0]
        assert sender.overhead == pytest.approx(SimConfig().kernel_load_us)

    def test_invocation_counts(self):
        report = simulate(p2p_plan(n_mb=5))
        assert all(tb.invocations == 5 for tb in report.tb_stats)

    def test_link_stats_collected(self):
        report = simulate(p2p_plan(n_mb=2))
        assert "nvlink:0->1" in report.link_stats
        stats = report.link_stats["nvlink:0->1"]
        assert stats.flows_carried == 2
        assert stats.bytes_moved == pytest.approx(2 * 1_048_576.0)
        assert 0 < stats.busy_time <= report.completion_time_us


class TestCreditsAndWaits:
    def test_sender_runs_ahead_by_fifo_depth(self):
        """With a blocked receiver the sender still streams fifo_depth
        chunks before stalling on credits."""
        cluster = single_node(2)
        program = ring_allgather(2)
        dag = build_dag(program.transfers, cluster)
        t01 = next(t for t in dag.tasks if t.src == 0)
        t10 = next(t for t in dag.tasks if t.src == 1)
        n_mb = 6
        # Rank 1's only TB receives *after* running its own long sends, so
        # rank 0's sender must wait on credits in between.
        tbs = [
            TBProgram(0, 0, [Invocation(t01.task_id, Side.SEND, mb) for mb in range(n_mb)], 16),
            TBProgram(
                1,
                0,
                [Invocation(t10.task_id, Side.SEND, mb) for mb in range(n_mb)]
                + [Invocation(t01.task_id, Side.RECV, mb) for mb in range(n_mb)],
                16,
            ),
            TBProgram(0, 1, [Invocation(t10.task_id, Side.RECV, mb) for mb in range(n_mb)], 16),
        ]
        plan = ExecutionPlan(
            name="credit-test",
            cluster=cluster,
            program=program,
            dag=dag,
            n_microbatches=n_mb,
            chunk_bytes=MB,
            tb_programs=tbs,
            config=SimConfig(fifo_depth=2),
        )
        report = simulate(plan)
        sender = report.tb_stats[0]
        assert sender.sync_wait > 0  # credit stalls happened

    def test_receiver_sync_wait_on_late_sender(self):
        config = SimConfig(kernel_load_us=0.0)
        plan = p2p_plan(config=config)
        # Make the sender's TB pay a large one-time load so the receiver
        # visibly waits.
        plan.config = SimConfig(kernel_load_us=500.0)
        report = simulate(plan)
        receiver = report.tb_stats[1]
        assert receiver.sync_wait >= 0  # receiver also pays its own load
        assert report.completion_time_us > 500.0


class TestDeadlockDetection:
    def test_cross_wait_deadlock_detected(self):
        """Two receivers each waiting for a sender that never runs."""
        cluster = single_node(2)
        program = ring_allgather(2)
        dag = build_dag(program.transfers, cluster)
        t01 = next(t for t in dag.tasks if t.src == 0)
        t10 = next(t for t in dag.tasks if t.src == 1)
        # Rank 0: recv(t10) then send(t01); rank 1: recv(t01) then send(t10).
        tbs = [
            TBProgram(0, 0, [
                Invocation(t10.task_id, Side.RECV, 0),
                Invocation(t01.task_id, Side.SEND, 0),
            ], 16),
            TBProgram(1, 0, [
                Invocation(t01.task_id, Side.RECV, 0),
                Invocation(t10.task_id, Side.SEND, 0),
            ], 16),
        ]
        plan = ExecutionPlan(
            name="deadlock",
            cluster=cluster,
            program=program,
            dag=dag,
            n_microbatches=1,
            chunk_bytes=MB,
            tb_programs=tbs,
        )
        with pytest.raises(SimulationDeadlock, match="never finished"):
            simulate(plan)


class TestBackendExecutions:
    """Full backend plans through the simulator, with sanity properties."""

    def test_nccl_all_collectives(self):
        cluster = multi_node(2, 4)
        backend = NCCLBackend(max_microbatches=4)
        for coll in (
            Collective.ALLGATHER,
            Collective.ALLREDUCE,
            Collective.REDUCESCATTER,
        ):
            report = simulate(backend.plan(cluster, coll, 64 * MB))
            assert report.completion_time_us > 0
            assert report.algo_bandwidth_gbps > 0.1

    def test_nccl_tree_allreduce(self):
        cluster = multi_node(2, 4)
        backend = NCCLBackend(algorithm="tree", max_microbatches=4)
        report = simulate(backend.plan(cluster, Collective.ALLREDUCE, 64 * MB))
        assert report.algo_bandwidth_gbps > 0.1

    def test_msccl_runs_expert_algorithm(self):
        cluster = multi_node(2, 4)
        backend = MSCCLBackend(max_microbatches=4)
        report = simulate(backend.plan(cluster, hm_allreduce(2, 4), 64 * MB))
        assert report.mode is ExecMode.INTERPRETER
        assert report.algo_bandwidth_gbps > 0.1

    def test_completion_time_monotone_in_buffer(self):
        cluster = multi_node(2, 4)
        backend = NCCLBackend(max_microbatches=8)
        small = simulate(backend.plan(cluster, Collective.ALLGATHER, 16 * MB))
        large = simulate(backend.plan(cluster, Collective.ALLGATHER, 256 * MB))
        assert large.completion_time_us > small.completion_time_us

    def test_all_tbs_released(self):
        cluster = multi_node(2, 4)
        report = simulate(
            NCCLBackend(max_microbatches=2).plan(
                cluster, Collective.ALLGATHER, 16 * MB
            )
        )
        assert all(tb.release_time > 0 for tb in report.tb_stats)
        assert max(tb.release_time for tb in report.tb_stats) == pytest.approx(
            report.completion_time_us
        )

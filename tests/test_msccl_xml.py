"""Tests for MSCCL-XML interop."""

import pytest

from repro.algorithms import (
    hm_allgather,
    hm_allreduce,
    mesh_allreduce,
    ring_allgather,
    ring_allreduce,
)
from repro.ir.task import Collective, CommType
from repro.runtime import verify_collective
from repro.synth import (
    MscclXmlError,
    TACCLSynthesizer,
    from_msccl_xml,
    read_msccl_xml,
    to_msccl_xml,
    write_msccl_xml,
)
from repro.topology import multi_node


def normalized(transfers):
    return sorted(transfers, key=lambda t: (t.step, t.src, t.dst, t.chunk))


PROGRAMS = [
    ring_allgather(4),
    ring_allreduce(8),
    mesh_allreduce(4),
    hm_allgather(2, 4),
    hm_allreduce(2, 8),
    TACCLSynthesizer().synthesize(multi_node(2, 4), Collective.ALLREDUCE),
]


class TestRoundTrip:
    @pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
    def test_transfers_preserved(self, program):
        back = from_msccl_xml(to_msccl_xml(program))
        assert normalized(back.transfers) == normalized(program.transfers)
        assert back.nranks == program.nranks
        assert back.collective is program.collective
        assert back.name == program.name

    @pytest.mark.parametrize("program", PROGRAMS[:3], ids=lambda p: p.name)
    def test_reimported_program_still_correct(self, program):
        back = from_msccl_xml(to_msccl_xml(program))
        verify_collective(back).raise_if_failed()

    def test_file_round_trip(self, tmp_path):
        program = ring_allgather(4)
        path = tmp_path / "algo.xml"
        write_msccl_xml(program, str(path))
        back = read_msccl_xml(str(path))
        assert normalized(back.transfers) == normalized(program.transfers)


class TestXmlStructure:
    def test_vocabulary(self):
        xml = to_msccl_xml(ring_allreduce(4))
        assert '<algo name="ring-allreduce"' in xml
        assert 'coll="allreduce"' in xml
        assert 'type="s"' in xml
        assert 'type="rrc"' in xml
        assert "<gpu" in xml and "<tb" in xml and "<step" in xml

    def test_connection_based_tbs(self):
        """The export uses MSCCL's rigid one-TB-per-connection layout."""
        import xml.etree.ElementTree as ET

        root = ET.fromstring(to_msccl_xml(ring_allgather(4)))
        gpu0 = next(g for g in root.iter("gpu") if g.attrib["id"] == "0")
        tbs = list(gpu0.iter("tb"))
        # Ring: one send connection, one receive connection.
        assert len(tbs) == 2
        assert {tb.attrib["send"] for tb in tbs} == {"1", "-1"}
        assert {tb.attrib["recv"] for tb in tbs} == {"-1", "3"}


class TestImportErrors:
    def test_not_xml(self):
        with pytest.raises(MscclXmlError, match="not parseable"):
            from_msccl_xml("definitely not xml <")

    def test_wrong_root(self):
        with pytest.raises(MscclXmlError, match="expected <algo>"):
            from_msccl_xml("<graph/>")

    def test_missing_ngpus(self):
        with pytest.raises(MscclXmlError, match="ngpus"):
            from_msccl_xml('<algo name="x" coll="allgather"/>')

    def test_unsupported_collective(self):
        with pytest.raises(MscclXmlError, match="unsupported collective"):
            from_msccl_xml('<algo ngpus="4" coll="alltoall"/>')

    def test_unsupported_step_type(self):
        text = """
        <algo name="x" ngpus="2" coll="allgather">
          <gpu id="0"><tb id="0" send="1" recv="-1">
            <step s="0" type="rcs" peer="1" srcoff="0"/>
          </tb></gpu>
        </algo>
        """
        with pytest.raises(MscclXmlError, match="unsupported step type"):
            from_msccl_xml(text)

    def test_recv_without_send(self):
        text = """
        <algo name="x" ngpus="2" coll="allgather">
          <gpu id="1"><tb id="0" send="-1" recv="0">
            <step s="0" type="r" peer="0" srcoff="0"/>
          </tb></gpu>
        </algo>
        """
        with pytest.raises(MscclXmlError, match="without matching send"):
            from_msccl_xml(text)

    def test_nop_steps_ignored(self):
        text = """
        <algo name="x" ngpus="2" coll="allgather">
          <gpu id="0"><tb id="0" send="1" recv="-1">
            <step s="0" type="s" peer="1" srcoff="0"/>
            <step s="1" type="nop" peer="-1" srcoff="0"/>
          </tb></gpu>
          <gpu id="1"><tb id="0" send="-1" recv="0">
            <step s="0" type="r" peer="0" srcoff="0"/>
          </tb></gpu>
        </algo>
        """
        program = from_msccl_xml(text)
        assert len(program.transfers) == 1
        assert program.transfers[0].op is CommType.RECV

"""End-to-end tests of the ResCCL backend against the baselines."""

import pytest

from repro import (
    MB,
    MSCCLBackend,
    NCCLBackend,
    ResCCLBackend,
    multi_node,
    simulate,
)
from repro.algorithms import hm_allgather, hm_allreduce, mesh_allreduce
from repro.ir.task import Collective
from repro.runtime.plan import ExecMode
from repro.synth import TACCLSynthesizer
from repro.topology import single_node


@pytest.fixture(scope="module")
def cluster():
    return multi_node(2, 8)


@pytest.fixture(scope="module")
def hm_ar():
    return hm_allreduce(2, 8)


class TestPlans:
    def test_plan_validates(self, cluster, hm_ar):
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, hm_ar, 64 * MB)
        plan.validate()
        assert plan.mode is ExecMode.KERNEL

    def test_compile_cached(self, cluster, hm_ar):
        backend = ResCCLBackend()
        first = backend.compile(hm_ar, cluster)
        second = backend.compile(hm_ar, cluster)
        assert first is second

    def test_interpreter_mode(self, cluster, hm_ar):
        backend = ResCCLBackend(mode=ExecMode.INTERPRETER, max_microbatches=4)
        plan = backend.plan(cluster, hm_ar, 64 * MB)
        assert plan.mode is ExecMode.INTERPRETER

    def test_plan_from_source_text(self, cluster):
        source = hm_allgather(2, 8).to_source()
        backend = ResCCLBackend(max_microbatches=2)
        report = simulate(backend.plan(cluster, source, 32 * MB))
        assert report.algo_bandwidth_gbps > 1.0

    def test_wrong_cluster_rejected(self, hm_ar):
        backend = ResCCLBackend()
        with pytest.raises(Exception):
            backend.plan(single_node(4), hm_ar, MB)


class TestPaperShape:
    """The headline comparisons, as fast regression checks."""

    def test_tb_counts_match_table3(self, cluster, hm_ar):
        resccl = simulate(
            ResCCLBackend(max_microbatches=4).plan(cluster, hm_ar, 64 * MB)
        )
        msccl = simulate(
            MSCCLBackend(max_microbatches=4).plan(cluster, hm_ar, 64 * MB)
        )
        assert resccl.max_tbs_per_rank() == 16  # Table 3 Topo2
        assert msccl.max_tbs_per_rank() == 30

    def test_resccl_beats_baselines_on_expert_ar(self, cluster, hm_ar):
        size = 256 * MB
        nccl = simulate(
            NCCLBackend(max_microbatches=8).plan(
                cluster, Collective.ALLREDUCE, size
            )
        )
        msccl = simulate(
            MSCCLBackend(max_microbatches=8).plan(cluster, hm_ar, size)
        )
        resccl = simulate(
            ResCCLBackend(max_microbatches=8).plan(cluster, hm_ar, size)
        )
        assert resccl.algo_bandwidth > nccl.algo_bandwidth
        assert resccl.algo_bandwidth > msccl.algo_bandwidth

    def test_resccl_beats_msccl_on_synth(self, cluster):
        program = TACCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE)
        size = 128 * MB
        msccl = simulate(
            MSCCLBackend(instances=4, max_microbatches=8).plan(
                cluster, program, size
            )
        )
        resccl = simulate(
            ResCCLBackend(max_microbatches=8).plan(cluster, program, size)
        )
        assert resccl.algo_bandwidth > msccl.algo_bandwidth
        assert resccl.tb_count() < 0.5 * msccl.tb_count()

    def test_resccl_idle_below_msccl(self, cluster, hm_ar):
        size = 64 * MB
        msccl = simulate(
            MSCCLBackend(max_microbatches=8).plan(cluster, hm_ar, size)
        )
        resccl = simulate(
            ResCCLBackend(max_microbatches=8).plan(cluster, hm_ar, size)
        )
        assert resccl.avg_idle_fraction() < msccl.avg_idle_fraction()

    def test_kernel_beats_interpreter(self, cluster, hm_ar):
        size = 256 * MB
        kernel = simulate(
            ResCCLBackend(max_microbatches=16).plan(cluster, hm_ar, size)
        )
        interp = simulate(
            ResCCLBackend(
                mode=ExecMode.INTERPRETER, max_microbatches=16
            ).plan(cluster, hm_ar, size)
        )
        assert kernel.algo_bandwidth > interp.algo_bandwidth

    def test_single_node_mesh(self):
        cluster = single_node(8)
        program = mesh_allreduce(8)
        report = simulate(
            ResCCLBackend(max_microbatches=8).plan(cluster, program, 128 * MB)
        )
        assert report.algo_bandwidth_gbps > 20.0

    def test_bandwidth_scales_with_buffer(self, cluster, hm_ar):
        backend = ResCCLBackend(max_microbatches=16)
        small = simulate(backend.plan(cluster, hm_ar, 8 * MB))
        large = simulate(backend.plan(cluster, hm_ar, 512 * MB))
        assert large.algo_bandwidth > small.algo_bandwidth

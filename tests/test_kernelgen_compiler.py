"""Tests for kernel generation and the offline compiler."""

import pytest

from repro.algorithms import hm_allreduce, ring_allgather
from repro.core import ResCCLCompiler, allocate_tbs, hpds_schedule
from repro.core.kernelgen import lower_to_programs, render_kernel_source
from repro.ir.dag import build_dag
from repro.lang.validate import ProgramValidationError
from repro.runtime.plan import Side
from repro.topology import multi_node, single_node


@pytest.fixture
def compiled_ring():
    cluster = single_node(4)
    return ResCCLCompiler().compile(ring_allgather(4), cluster)


class TestLowering:
    def test_task_level_invocation_order(self):
        """Each task runs all micro-batches before the TB moves on."""
        cluster = single_node(4)
        dag = build_dag(ring_allgather(4).transfers, cluster)
        pipeline = hpds_schedule(dag)
        programs = lower_to_programs(allocate_tbs(dag, pipeline), 3, nwarps=16)
        for tb in programs:
            seen_done = set()
            current = None
            for inv in tb.invocations:
                key = (inv.task_id, inv.side)
                if key != current:
                    assert key not in seen_done, "task resumed after leaving"
                    if current is not None:
                        seen_done.add(current)
                    current = key
                    assert inv.mb == 0
            # micro-batches within one task strictly ascend
            by_task = {}
            for inv in tb.invocations:
                by_task.setdefault((inv.task_id, inv.side), []).append(inv.mb)
            for mbs in by_task.values():
                assert mbs == sorted(mbs)
                assert mbs == list(range(len(mbs)))

    def test_all_sides_lowered(self):
        cluster = multi_node(2, 4)
        dag = build_dag(hm_allreduce(2, 4).transfers, cluster)
        pipeline = hpds_schedule(dag)
        n_mb = 2
        programs = lower_to_programs(allocate_tbs(dag, pipeline), n_mb, nwarps=16)
        total = sum(len(tb.invocations) for tb in programs)
        assert total == 2 * len(dag) * n_mb

    def test_nwarps_propagated(self):
        cluster = single_node(4)
        dag = build_dag(ring_allgather(4).transfers, cluster)
        pipeline = hpds_schedule(dag)
        programs = lower_to_programs(allocate_tbs(dag, pipeline), 1, nwarps=12)
        assert all(tb.nwarps == 12 for tb in programs)


class TestKernelSource:
    def test_listing_has_three_dimensions(self, compiled_ring):
        source = compiled_ring.kernel_source(0, n_microbatches=4)
        # Rank dimension: one kernel per rank.
        assert "_r0" in source
        # TB dimension: switch over blockIdx.
        assert "switch (blockIdx.x)" in source
        assert "case 0:" in source
        # Pipeline dimension: per-primitive micro-batch loops.
        assert "for (int mb = 0; mb < 4; ++mb)" in source

    def test_listing_uses_primitive_vocabulary(self):
        cluster = multi_node(2, 4)
        compiled = ResCCLCompiler().compile(hm_allreduce(2, 4), cluster)
        source = compiled.kernel_source(0, n_microbatches=2)
        assert "send(" in source
        assert "recvReduceCopy(" in source

    def test_one_time_load(self, compiled_ring):
        source = compiled_ring.kernel_source(1)
        assert "load_pipeline" in source
        assert source.count("load_pipeline") == 1


class TestCompiler:
    def test_phase_times_recorded(self, compiled_ring):
        times = compiled_ring.phase_times_us
        assert set(times) == {"parsing", "analysis", "scheduling", "lowering"}
        assert all(t >= 0 for t in times.values())
        assert compiled_ring.total_time_us == sum(times.values())

    def test_compile_from_source(self):
        cluster = single_node(4)
        source = ring_allgather(4).to_source()
        compiled = ResCCLCompiler().compile(source, cluster)
        assert len(compiled.dag) == 12
        assert compiled.phase_times_us["parsing"] > 0

    def test_pipeline_invariants_enforced(self, compiled_ring):
        compiled_ring.pipeline.check_all(compiled_ring.dag)

    def test_scheduler_selection(self):
        cluster = single_node(4)
        rr = ResCCLCompiler(scheduler="rr").compile(ring_allgather(4), cluster)
        assert rr.pipeline.scheduler == "rr"
        with pytest.raises(ValueError, match="unknown scheduler"):
            ResCCLCompiler(scheduler="sjf")

    def test_invalid_program_rejected(self):
        from repro.ir.task import Collective
        from repro.lang.builder import AlgoProgram

        cluster = single_node(4)
        bad = AlgoProgram.create(4, Collective.ALLGATHER)
        bad.transfer(0, 1, 0, 99, "recv")  # chunk out of range
        with pytest.raises(ProgramValidationError):
            ResCCLCompiler().compile(bad, cluster)

    def test_validation_can_be_disabled(self):
        from repro.ir.task import Collective
        from repro.lang.builder import AlgoProgram

        cluster = single_node(4)
        partial = AlgoProgram.create(4, Collective.ALLGATHER)
        partial.transfer(0, 1, 0, 0, "recv")
        compiled = ResCCLCompiler(validate=False).compile(partial, cluster)
        assert len(compiled.dag) == 1

    def test_tb_count(self, compiled_ring):
        assert compiled_ring.tb_count() == len(compiled_ring.assignments)

"""Tests for the TACCL/TECCL synthesizer stand-ins."""

import pytest

from repro.ir.dag import build_dag
from repro.ir.task import Collective, CommType
from repro.lang.validate import validate_program
from repro.runtime.memory import verify_collective
from repro.synth import (
    GreedyStepScheduler,
    SynthesisError,
    TACCLSynthesizer,
    TECCLSynthesizer,
    assemble_allreduce,
    reverse_to_reducescatter,
)
from repro.topology import multi_node, single_node

ALL_COLLECTIVES = (
    Collective.ALLGATHER,
    Collective.ALLREDUCE,
    Collective.REDUCESCATTER,
)


@pytest.fixture(params=[TACCLSynthesizer, TECCLSynthesizer])
def synthesizer(request):
    return request.param()


class TestCorrectness:
    @pytest.mark.parametrize("shape", [(2, 4), (2, 8), (4, 4), (3, 4)])
    @pytest.mark.parametrize("collective", ALL_COLLECTIVES)
    def test_synthesized_algorithms_correct(self, synthesizer, shape, collective):
        cluster = multi_node(*shape)
        program = synthesizer.synthesize(cluster, collective)
        assert program.collective is collective
        verify_collective(program).raise_if_failed()
        validate_program(program, cluster).raise_if_failed()

    def test_single_node_synthesis(self, synthesizer):
        cluster = single_node(8)
        program = synthesizer.synthesize(cluster, Collective.ALLGATHER)
        verify_collective(program).raise_if_failed()

    def test_synthesized_algorithms_single_stage(self, synthesizer):
        # Synthesizers execute at algorithm level: no manual stages.
        cluster = multi_node(2, 4)
        program = synthesizer.synthesize(cluster, Collective.ALLREDUCE)
        assert program.stage_starts == [0]


class TestStructure:
    def test_taccl_inter_traffic_restricted_to_senders(self):
        cluster = multi_node(2, 8)
        synth = TACCLSynthesizer(senders_per_node=2)
        program = synth.synthesize(cluster, Collective.ALLGATHER)
        inter_senders = {
            t.src
            for t in program.transfers
            if not cluster.same_node(t.src, t.dst)
        }
        # Only the sketch's sender GPUs (local index < 2) go inter-node.
        assert all(cluster.local_index(r) < 2 for r in inter_senders)

    def test_taccl_load_imbalance(self):
        """The sketch restriction concentrates load — the paper's
        'unevenly distributed link load' observation."""
        cluster = multi_node(2, 8)
        program = TACCLSynthesizer().synthesize(cluster, Collective.ALLGATHER)
        dag = build_dag(program.transfers, cluster)
        loads = [len(tasks) for tasks in dag.link_tasks.values()]
        assert max(loads) >= 2 * (sum(loads) / len(loads))

    def test_teccl_spreads_inter_traffic(self):
        """Congestion-aware routing engages more inter senders than the
        TACCL sketch does."""
        cluster = multi_node(2, 8)
        taccl = TACCLSynthesizer().synthesize(cluster, Collective.ALLGATHER)
        teccl = TECCLSynthesizer().synthesize(cluster, Collective.ALLGATHER)

        def inter_senders(program):
            return {
                t.src
                for t in program.transfers
                if not cluster.same_node(t.src, t.dst)
            }

        assert len(inter_senders(teccl)) >= len(inter_senders(taccl))

    def test_intra_rings_use_multiple_connections(self):
        cluster = multi_node(2, 8)
        program = TACCLSynthesizer(intra_rings=4).synthesize(
            cluster, Collective.ALLGATHER
        )
        peers_of_rank0 = {
            t.dst
            for t in program.transfers
            if t.src == 0 and cluster.same_node(0, t.dst)
        }
        assert len(peers_of_rank0) >= 3


class TestGreedyStepScheduler:
    def test_seed_and_hop(self):
        cluster = single_node(4)
        scheduler = GreedyStepScheduler(cluster)
        scheduler.seed(0, 0)
        t = scheduler.schedule_hop(0, 1, 0)
        assert t.step == 0
        assert scheduler.holds(1, 0)
        assert scheduler.available_at(1, 0) == 1

    def test_link_occupancy_serializes(self):
        cluster = single_node(4)
        scheduler = GreedyStepScheduler(cluster)
        scheduler.seed(0, 0)
        scheduler.seed(0, 1)
        first = scheduler.schedule_hop(0, 1, 0)
        second = scheduler.schedule_hop(0, 1, 1)  # same link
        assert second.step > first.step

    def test_dependent_hop_waits_for_data(self):
        cluster = single_node(4)
        scheduler = GreedyStepScheduler(cluster)
        scheduler.seed(0, 0)
        scheduler.schedule_hop(0, 1, 0)  # arrives at step 1
        forward = scheduler.schedule_hop(1, 2, 0)
        assert forward.step >= 1

    def test_unrouted_chunk_raises(self):
        cluster = single_node(4)
        scheduler = GreedyStepScheduler(cluster)
        with pytest.raises(SynthesisError, match="never receives"):
            scheduler.schedule_hop(0, 1, 5)

    def test_link_load_reporting(self):
        cluster = single_node(4)
        scheduler = GreedyStepScheduler(cluster)
        scheduler.seed(0, 0)
        scheduler.seed(0, 1)
        scheduler.schedule_hop(0, 1, 0)
        scheduler.schedule_hop(0, 1, 1)
        assert scheduler.link_load()[cluster.link_name(0, 1)] == 2


class TestReversal:
    def test_reverse_flips_direction_and_op(self):
        cluster = single_node(4)
        from repro.ir.task import Transfer

        forward = [Transfer(src=0, dst=1, step=0, chunk=0, op=CommType.RECV)]
        reverse = reverse_to_reducescatter(forward)
        assert len(reverse) == 1
        assert (reverse[0].src, reverse[0].dst) == (1, 0)
        assert reverse[0].op is CommType.RRC

    def test_reverse_serializes_fan_in(self):
        """A one-to-many broadcast reverses into a many-to-one reduction
        whose writes must not collide."""
        from repro.ir.task import Transfer

        forward = [
            Transfer(src=0, dst=d, step=0, chunk=0, op=CommType.RECV)
            for d in (1, 2, 3)
        ]
        reverse = reverse_to_reducescatter(forward)
        steps = [t.step for t in reverse]
        assert len(set(steps)) == 3  # serialized into distinct steps

    def test_reverse_empty(self):
        assert reverse_to_reducescatter([]) == []

    def test_assembled_allreduce_orders_phases(self):
        cluster = multi_node(2, 4)
        ag = TACCLSynthesizer().synthesize_allgather(cluster)
        ar = assemble_allreduce(ag, "test-ar")
        rrc_steps = [t.step for t in ar.transfers if t.op is CommType.RRC]
        recv_steps = [t.step for t in ar.transfers if t.op is CommType.RECV]
        assert max(rrc_steps) < min(recv_steps)

"""Tests for the static plan progress linter."""

import pytest

from repro import MB, MSCCLBackend, NCCLBackend, ResCCLBackend, multi_node
from repro.algorithms import hm_allreduce, ring_allgather
from repro.ir.dag import build_dag
from repro.ir.task import Collective
from repro.runtime import lint_plan
from repro.runtime.plan import ExecutionPlan, Invocation, Side, TBProgram
from repro.topology import single_node


@pytest.fixture(scope="module")
def cluster():
    return multi_node(2, 4)


class TestCleanPlans:
    def test_resccl_plan_lints(self, cluster):
        plan = ResCCLBackend(max_microbatches=4).plan(
            cluster, hm_allreduce(2, 4), 32 * MB
        )
        result = lint_plan(plan)
        assert result.ok
        assert result.node_count > 0
        assert result.edge_count > result.node_count // 2

    def test_msccl_plan_lints(self, cluster):
        plan = MSCCLBackend(instances=2, max_microbatches=4).plan(
            cluster, hm_allreduce(2, 4), 32 * MB
        )
        assert lint_plan(plan).ok

    def test_nccl_plan_lints(self, cluster):
        plan = NCCLBackend(max_microbatches=4).plan(
            cluster, Collective.ALLREDUCE, 32 * MB
        )
        assert lint_plan(plan).ok

    def test_microbatch_prefix_clamped(self, cluster):
        plan = ResCCLBackend(max_microbatches=2).plan(
            cluster, hm_allreduce(2, 4), 16 * MB
        )
        result = lint_plan(plan, microbatches=10)
        assert result.ok
        # Nodes cover exactly the plan's (smaller) micro-batch count.
        assert result.node_count == 2 * len(plan.dag) * plan.n_microbatches


class TestDeadlockDetection:
    def _cross_wait_plan(self):
        """Two TBs each receive before they send — a classic cycle."""
        cluster = single_node(2)
        program = ring_allgather(2)
        dag = build_dag(program.transfers, cluster)
        t01 = next(t for t in dag.tasks if t.src == 0)
        t10 = next(t for t in dag.tasks if t.src == 1)
        tbs = [
            TBProgram(0, 0, [
                Invocation(t10.task_id, Side.RECV, 0),
                Invocation(t01.task_id, Side.SEND, 0),
            ], 16),
            TBProgram(1, 0, [
                Invocation(t01.task_id, Side.RECV, 0),
                Invocation(t10.task_id, Side.SEND, 0),
            ], 16),
        ]
        return ExecutionPlan(
            name="deadlock",
            cluster=cluster,
            program=program,
            dag=dag,
            n_microbatches=1,
            chunk_bytes=MB,
            tb_programs=tbs,
        )

    def test_cycle_detected(self):
        result = lint_plan(self._cross_wait_plan())
        assert not result.ok
        assert "wait-for cycle" in result.issues[0]

    def test_raise_if_failed(self):
        with pytest.raises(ValueError, match="progress analysis"):
            lint_plan(self._cross_wait_plan()).raise_if_failed()

    def test_linter_agrees_with_runtime(self):
        """The same plan the runtime deadlocks on fails the linter."""
        from repro.runtime.simulator import SimulationDeadlock, simulate

        plan = self._cross_wait_plan()
        assert not lint_plan(plan).ok
        with pytest.raises(SimulationDeadlock):
            simulate(plan)

"""Tests for trace recording and timeline rendering."""

import json

import pytest

from repro import MB, ResCCLBackend, multi_node
from repro.algorithms import hm_allreduce
from repro.analysis import (
    ascii_gantt,
    partition_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.analysis.timeline import FAULT_PID, LINK_PID, SPAN_PID
from repro.runtime.metrics import SimReport, TraceEvent
from repro.runtime.plan import ExecMode
from repro.runtime.simulator import simulate


@pytest.fixture(scope="module")
def traced_report():
    plan = ResCCLBackend(max_microbatches=3).plan(
        multi_node(2, 4), hm_allreduce(2, 4), 24 * MB
    )
    return simulate(plan, record_trace=True)


@pytest.fixture(scope="module")
def untraced_report():
    plan = ResCCLBackend(max_microbatches=2).plan(
        multi_node(2, 4), hm_allreduce(2, 4), 16 * MB
    )
    return simulate(plan)


class TestTraceRecording:
    def test_trace_off_by_default(self, untraced_report):
        assert untraced_report.trace == []

    def test_trace_has_transfer_events(self, traced_report):
        kinds = {event.kind for event in traced_report.trace}
        assert "send" in kinds
        assert "recv" in kinds

    def test_events_within_horizon(self, traced_report):
        horizon = traced_report.completion_time_us
        for event in traced_report.trace:
            assert 0.0 <= event.start_us < event.end_us <= horizon + 1e-6

    def test_send_events_match_invocations(self, traced_report):
        sends = [e for e in traced_report.trace if e.kind == "send"]
        total_send_invocations = sum(
            tb.invocations
            for tb in traced_report.tb_stats
            if "send" in tb.label and "+recv" not in tb.label
        )
        # Every recorded send has a real task binding.
        assert all(e.task_id >= 0 and e.mb >= 0 for e in sends)
        assert len(sends) > 0 and total_send_invocations > 0

    def test_busy_time_matches_trace(self, traced_report):
        """Per-TB busy time equals the sum of its send+recv intervals."""
        by_tb = {}
        for event in traced_report.trace:
            if event.kind in ("send", "recv"):
                by_tb.setdefault(event.tb_index, 0.0)
                by_tb[event.tb_index] += event.duration_us
        for index, stats in enumerate(traced_report.tb_stats):
            assert by_tb.get(index, 0.0) == pytest.approx(stats.busy, rel=1e-6)

    def test_event_duration(self):
        event = TraceEvent(
            tb_index=0, rank=0, kind="send", start_us=1.0, end_us=3.5
        )
        assert event.duration_us == pytest.approx(2.5)


class TestAsciiGantt:
    def test_renders_lanes(self, traced_report):
        chart = ascii_gantt(traced_report, width=40, ranks=[0])
        assert "timeline" in chart
        assert "|" in chart
        assert "#" in chart  # some send activity visible

    def test_width_respected(self, traced_report):
        chart = ascii_gantt(traced_report, width=30, ranks=[0])
        for line in chart.splitlines()[1:]:
            if "|" in line:
                lane = line.split("|")[1]
                assert len(lane) == 30

    def test_max_tbs_truncates(self, traced_report):
        chart = ascii_gantt(traced_report, width=20, max_tbs=2)
        assert "more TBs" in chart

    def test_requires_trace(self, untraced_report):
        with pytest.raises(ValueError, match="no trace"):
            ascii_gantt(untraced_report)


class TestChromeTrace:
    def test_structure(self, traced_report):
        trace = to_chrome_trace(traced_report)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(traced_report.trace)
        assert metadata  # process names for every rank

    def test_json_serializable(self, traced_report, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["plan"] == traced_report.plan_name

    def test_requires_trace(self, untraced_report):
        with pytest.raises(ValueError, match="no trace"):
            to_chrome_trace(untraced_report)

    def test_link_counter_tracks(self, traced_report):
        trace = to_chrome_trace(traced_report)
        counters = [
            e for e in trace["traceEvents"]
            if e["ph"] == "C" and e["pid"] == LINK_PID
        ]
        assert counters, "record_trace=True must yield link counter tracks"
        assert all("active_flows" in e["args"] for e in counters)
        without = to_chrome_trace(traced_report, include_counters=False)
        assert not any(e["ph"] == "C" for e in without["traceEvents"])

    def test_span_lane(self, traced_report):
        spans = [
            {"name": "compile", "cat": "pipeline", "ph": "X",
             "ts": 0.0, "dur": 5.0, "pid": SPAN_PID, "tid": 0, "args": {}},
        ]
        trace = to_chrome_trace(traced_report, spans=spans)
        names = {
            e["name"] for e in trace["traceEvents"] if e["pid"] == SPAN_PID
        }
        assert "compile" in names
        validate_chrome_trace(trace)

    def test_is_schema_valid(self, traced_report):
        validate_chrome_trace(to_chrome_trace(traced_report))


def _fault_report():
    """A hand-built report mixing TB activity with global fault events."""
    return SimReport(
        plan_name="faulty",
        mode=ExecMode.KERNEL,
        completion_time_us=20.0,
        total_bytes=1.0,
        trace=[
            TraceEvent(tb_index=0, rank=0, kind="send",
                       start_us=0.0, end_us=8.0, task_id=0, mb=0),
            TraceEvent(tb_index=1, rank=1, kind="recv",
                       start_us=8.0, end_us=20.0, task_id=0, mb=0),
            TraceEvent(tb_index=-1, rank=-1, kind="fault:link-down",
                       start_us=3.0, end_us=6.0),
            TraceEvent(tb_index=-1, rank=-1, kind="recover:resume",
                       start_us=6.0, end_us=6.0),
        ],
        trace_dropped=2,
    )


class TestRankFiltering:
    def test_partition_keeps_globals(self):
        lanes, global_events = partition_trace(_fault_report(), ranks=[0])
        assert [e.rank for e in lanes] == [0]
        assert {e.kind for e in global_events} == {
            "fault:link-down", "recover:resume"
        }

    def test_gantt_and_chrome_agree(self):
        report = _fault_report()
        chart = ascii_gantt(report, width=20, ranks=[0])
        trace = to_chrome_trace(report, ranks=[0])
        lane_pids = {
            e["pid"] for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] != FAULT_PID
        }
        assert lane_pids == {0}
        # Both renderers keep the (global) fault timeline.
        assert "fault:link-down" in chart
        fault_names = {
            e["name"] for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == FAULT_PID
        }
        assert fault_names == {"fault:link-down", "recover:resume"}

    def test_dropped_counter_surfaces(self):
        report = _fault_report()
        assert "dropped 2" in ascii_gantt(report, width=20)
        trace = to_chrome_trace(report)
        assert trace["otherData"]["trace_dropped"] == 2

    def test_instant_fault_event_visible(self):
        trace = to_chrome_trace(_fault_report())
        resume = [
            e for e in trace["traceEvents"]
            if e.get("name") == "recover:resume" and e["ph"] == "X"
        ]
        assert resume and resume[0]["dur"] > 0
        validate_chrome_trace(trace)


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_empty_events(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_bad_ph(self):
        with pytest.raises(ValueError, match="unsupported ph"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0}]}
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "X", "pid": 0, "tid": 0,
                         "ts": 1.0, "dur": -2.0}
                    ]
                }
            )

    def test_rejects_missing_pid(self):
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "M"}]}
            )

"""Golden equivalence: the indexed cold-compile path is bit-identical.

The indexed implementations of dependency analysis (fused
``build_dag``), HPDS scheduling, and state-based TB allocation are
*optimizations*, not approximations: for every input, a compile with
``indexed_schedule=True`` must produce the exact same global pipeline,
the exact same TB assignments, and the exact same rendered kernels as
the reference implementations kept behind ``indexed_schedule=False``.
:func:`repro.core.compiler.compile_fingerprint` captures all of that.

Coverage: every built-in algorithm over single- and multi-node
clusters, the DSL example corpus, both synthesizer stand-ins, the
round-robin ablation scheduler, and a degraded-cluster replan through
``build_resume_plan``.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.algorithms import available_algorithms, build_algorithm
from repro.core import ResCCLBackend
from repro.core.compiler import ResCCLCompiler, compile_fingerprint
from repro.core.plancache import PlanCache
from repro.faults import CollectiveCheckpoint, build_resume_plan
from repro.ir.task import Collective
from repro.lang import parse_program
from repro.runtime import MB, Simulator, simulate
from repro.synth import TACCLSynthesizer, TECCLSynthesizer
from repro.topology import Cluster

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "algorithms").glob(
        "*.rescclang"
    )
)


def cluster_for(program):
    gpus = program.header.gpus_per_node
    if program.nranks % gpus:
        return Cluster(nodes=1, gpus_per_node=program.nranks)
    return Cluster(nodes=program.nranks // gpus, gpus_per_node=gpus)


def assert_identical_compile(program, cluster, scheduler="hpds"):
    """Compile both ways (no cache) and compare full fingerprints."""
    indexed = ResCCLCompiler(scheduler=scheduler).compile(program, cluster)
    reference = ResCCLCompiler(
        scheduler=scheduler, indexed_schedule=False
    ).compile(program, cluster)
    ranks = list(range(cluster.world_size))
    assert compile_fingerprint(indexed, kernel_ranks=ranks) == (
        compile_fingerprint(reference, kernel_ranks=ranks)
    )
    return indexed


class TestBuiltins:
    @pytest.mark.parametrize("algo", available_algorithms())
    def test_multi_node(self, algo):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        assert_identical_compile(build_algorithm(algo, cluster), cluster)

    @pytest.mark.parametrize(
        "algo", ["ring-allreduce", "mesh-allreduce", "tree-allreduce"]
    )
    def test_single_node(self, algo):
        cluster = Cluster(nodes=1, gpus_per_node=8)
        assert_identical_compile(build_algorithm(algo, cluster), cluster)

    def test_wider_fabric(self):
        cluster = Cluster(nodes=4, gpus_per_node=4)
        assert_identical_compile(
            build_algorithm("hm-allreduce", cluster), cluster
        )

    def test_rr_ablation_scheduler(self):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        assert_identical_compile(
            build_algorithm("ring-allreduce", cluster),
            cluster,
            scheduler="rr",
        )


class TestDslCorpus:
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_corpus_program(self, path):
        program = parse_program(path.read_text())
        assert_identical_compile(program, cluster_for(program))


class TestSynthesized:
    def test_taccl_allgather(self):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = TACCLSynthesizer().synthesize(cluster, Collective.ALLGATHER)
        assert_identical_compile(program, cluster)

    def test_teccl_allreduce(self):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = TECCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE)
        assert_identical_compile(program, cluster)


class TestPlanCacheSharing:
    def test_modes_share_cache_entries(self):
        """indexed_schedule is not part of the compile key: a reference
        compile hits the entry an indexed compile populated."""
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm("ring-allreduce", cluster)
        cache = PlanCache()
        first = cache.compile(ResCCLCompiler(), program, cluster)
        second = cache.compile(
            ResCCLCompiler(indexed_schedule=False), program, cluster
        )
        assert second is first
        assert cache.stats.hits == 1


class TestDegradedReplan:
    def test_resume_plan_identical(self):
        """A degraded-cluster residual compile is bit-identical too.

        The replan path enters the compiler at ``compile_residual`` with
        a DAG built straight from residual transfers on the degraded
        cluster — no DSL source, relay detours included — so it
        exercises fused analysis + indexed scheduling + indexed TB
        allocation on inputs no full compile produces.
        """
        from repro.faults import FaultInjector, FaultPlan, make_policy
        from repro.faults.recovery import ReplanRequested

        cluster = Cluster(nodes=2, gpus_per_node=4)
        backend = ResCCLBackend(max_microbatches=4)
        plan = backend.plan(
            cluster, build_algorithm("ring-allreduce", cluster), 16 * MB
        )
        clean = simulate(plan)
        fault_plan = FaultPlan().kill(
            "nv:out:0", at_us=0.5 * clean.completion_time_us
        )
        sim = Simulator(
            plan,
            injector=FaultInjector(fault_plan),
            recovery=make_policy("replan"),
        )
        with pytest.raises(ReplanRequested) as info:
            sim.run()
        request = info.value
        ckpt = CollectiveCheckpoint.capture(request.sim, request.dead_edges)

        fast = build_resume_plan(plan, ckpt, request.dead_edges)
        slow = build_resume_plan(
            plan, ckpt, request.dead_edges, indexed_schedule=False
        )
        assert [dataclasses.asdict(tb) for tb in fast.plan.tb_programs] == [
            dataclasses.asdict(tb) for tb in slow.plan.tb_programs
        ]
        assert fast.metas == slow.metas
        assert fast.residual_instances == slow.residual_instances

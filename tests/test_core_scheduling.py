"""Tests for HPDS / round-robin scheduling and pipeline invariants."""

import pytest

from repro.algorithms import (
    hm_allgather,
    hm_allreduce,
    ring_allgather,
    ring_allreduce,
)
from repro.core import hpds_schedule, rr_schedule
from repro.core.pipeline import GlobalPipeline, SubPipeline
from repro.ir.dag import build_dag
from repro.topology import multi_node, single_node

SCHEDULERS = [hpds_schedule, rr_schedule]


def dag_for(program, cluster):
    return build_dag(program.transfers, cluster)


class TestSchedulingInvariants:
    @pytest.mark.parametrize("schedule", SCHEDULERS)
    def test_ring_allgather_invariants(self, schedule):
        dag = dag_for(ring_allgather(8), single_node(8))
        pipeline = schedule(dag)
        pipeline.check_all(dag)

    @pytest.mark.parametrize("schedule", SCHEDULERS)
    def test_hm_allreduce_invariants(self, schedule):
        dag = dag_for(hm_allreduce(2, 8), multi_node(2, 8))
        pipeline = schedule(dag)
        pipeline.check_all(dag)

    @pytest.mark.parametrize("schedule", SCHEDULERS)
    def test_hm_allgather_invariants(self, schedule):
        dag = dag_for(hm_allgather(4, 4), multi_node(4, 4))
        pipeline = schedule(dag)
        pipeline.check_all(dag)

    @pytest.mark.parametrize("schedule", SCHEDULERS)
    def test_every_task_scheduled_once(self, schedule):
        dag = dag_for(ring_allreduce(8), single_node(8))
        pipeline = schedule(dag)
        scheduled = pipeline.ordered_task_ids()
        assert sorted(scheduled) == sorted(t.task_id for t in dag.tasks)

    @pytest.mark.parametrize("schedule", SCHEDULERS)
    def test_no_link_reuse_within_subpipeline(self, schedule):
        dag = dag_for(hm_allreduce(2, 4), multi_node(2, 4))
        pipeline = schedule(dag)
        for sp in pipeline.sub_pipelines:
            links = [dag.task(t).link for t in sp.task_ids]
            assert len(links) == len(set(links))

    @pytest.mark.parametrize("schedule", SCHEDULERS)
    def test_depth_bounded_by_link_load(self, schedule):
        """The pipeline needs at least max-tasks-per-link sub-pipelines."""
        dag = dag_for(ring_allgather(8), single_node(8))
        pipeline = schedule(dag)
        heaviest = max(len(tasks) for tasks in dag.link_tasks.values())
        assert pipeline.depth >= heaviest


class TestHPDSQuality:
    def test_hpds_depth_at_most_rr(self):
        """Priority balancing should never pack worse than fixed order."""
        for program, cluster in [
            (hm_allreduce(2, 8), multi_node(2, 8)),
            (hm_allgather(4, 4), multi_node(4, 4)),
            (ring_allreduce(16), single_node(16)),
        ]:
            dag = dag_for(program, cluster)
            assert hpds_schedule(dag).depth <= rr_schedule(dag).depth + 1

    def test_hpds_balances_chunk_progress(self):
        """After the first sub-pipeline, every chunk with root work has
        contributed (priority rotation prevents starvation)."""
        dag = dag_for(ring_allgather(8), single_node(8))
        pipeline = hpds_schedule(dag)
        first = pipeline.sub_pipelines[0]
        chunks_in_first = {dag.task(t).chunk for t in first.task_ids}
        assert len(chunks_in_first) >= 2

    def test_scheduler_tag(self):
        dag = dag_for(ring_allgather(4), single_node(4))
        assert hpds_schedule(dag).scheduler == "hpds"
        assert rr_schedule(dag).scheduler == "rr"


class TestPipelineChecks:
    def test_check_complete_catches_missing(self):
        dag = dag_for(ring_allgather(4), single_node(4))
        pipeline = GlobalPipeline(
            sub_pipelines=[SubPipeline(index=0, task_ids=[0, 1])]
        )
        with pytest.raises(ValueError, match="never scheduled"):
            pipeline.check_complete(dag)

    def test_check_complete_catches_duplicates(self):
        dag = dag_for(ring_allgather(4), single_node(4))
        all_ids = [t.task_id for t in dag.tasks]
        pipeline = GlobalPipeline(
            sub_pipelines=[
                SubPipeline(index=0, task_ids=all_ids),
                SubPipeline(index=1, task_ids=[all_ids[0]]),
            ]
        )
        with pytest.raises(ValueError, match="more than one"):
            pipeline.check_complete(dag)

    def test_check_dependencies_catches_inversion(self):
        dag = dag_for(ring_allgather(4), single_node(4))
        # Schedule everything in one sub-pipeline in reverse dependency
        # order: consumers before producers.
        order = sorted(
            (t.task_id for t in dag.tasks),
            key=lambda tid: -dag.task(tid).step,
        )
        pipeline = GlobalPipeline(
            sub_pipelines=[SubPipeline(index=0, task_ids=order)]
        )
        with pytest.raises(ValueError, match="depends on"):
            pipeline.check_dependencies(dag)

    def test_check_comm_conflicts(self):
        dag = dag_for(ring_allgather(4), single_node(4))
        same_link = [
            t.task_id for t in dag.tasks if t.src == 0
        ]  # all rank0 sends share link 0->1
        pipeline = GlobalPipeline(
            sub_pipelines=[SubPipeline(index=0, task_ids=same_link)]
        )
        with pytest.raises(ValueError, match="two tasks on link"):
            pipeline.check_comm_conflicts(dag)

    def test_order_key_total_order(self):
        dag = dag_for(ring_allgather(4), single_node(4))
        pipeline = hpds_schedule(dag)
        keys = [pipeline.order_key(t.task_id) for t in dag.tasks]
        assert len(set(keys)) == len(keys)

"""Golden determinism: every exact-mode optimization is bit-identical.

The headline invariant of the simulator's performance machinery is that
each layer is an *optimization*, not an approximation.  With the default
``rate_rel_epsilon=0.0``, a simulation must produce a bitwise-equal
report across every combination of

* ``incremental_rates`` — the dirty-edge allocator vs the brute-force
  reference that recomputes every edge share per pass;
* ``vectorized_rates`` — the numpy re-rater vs the scalar loop;
* ``event_queue`` — calendar/bucket queue vs the plain binary heap;
* ``aggregate_microbatches`` — representative-instance schedule
  metadata sharing vs fully expanded per-instance bookkeeping.

Only the *work counters* enumerated in
``SimCounters.WORK_COUNTER_FIELDS`` (how the answer was computed) may
differ; every physical field — completion times, TB/link stats, the
dynamic completion order, traces — is pinned.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.algorithms import build_algorithm
from repro.core import ResCCLBackend
from repro.faults import run_with_faults
from repro.lang import parse_program
from repro.runtime import MB, SimConfig, simulate
from repro.runtime.metrics import SimCounters
from repro.topology import Cluster

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "algorithms").glob(
        "*.rescclang"
    )
)


def cluster_for(program):
    gpus = program.header.gpus_per_node
    if program.nranks % gpus:
        return Cluster(nodes=1, gpus_per_node=program.nranks)
    return Cluster(nodes=program.nranks // gpus, gpus_per_node=gpus)


def report_fingerprint(report):
    """Everything observable about a run, with exact float identity.

    ``dataclasses.asdict`` recurses through TB stats, link stats, trace
    events, fault stats, and counters; the declared work counters
    (``SimCounters.WORK_COUNTER_FIELDS``) are masked out as the
    optimizations' legitimate degrees of freedom.
    """
    data = dataclasses.asdict(report)
    for field in SimCounters.WORK_COUNTER_FIELDS:
        data["counters"].pop(field)
    data["mode"] = report.mode.value
    return data


def with_config(plan, **overrides):
    """The same plan with config fields overridden."""
    return dataclasses.replace(
        plan,
        config=dataclasses.replace(plan.config, **overrides),
    )


def with_reference_solver(plan):
    """The same plan, solved by the brute-force reference allocator."""
    return with_config(plan, incremental_rates=False)


#: Exact-mode configuration axes; each must be bit-identical to the
#: plan's default configuration.
EXACT_VARIANTS = {
    "reference-solver": dict(incremental_rates=False),
    "scalar-rates": dict(vectorized_rates=False),
    "vectorized-always": dict(vectorized_rates=True, vectorize_min_flows=0),
    "heap-queue": dict(event_queue="heap"),
    "bucket-queue": dict(event_queue="bucket"),
    "expanded-bookkeeping": dict(aggregate_microbatches=False),
}


def assert_bit_identical(plan, record_trace=False):
    fast = simulate(plan, record_trace=record_trace)
    slow = simulate(with_reference_solver(plan), record_trace=record_trace)
    assert report_fingerprint(fast) == report_fingerprint(slow)
    # The optimization actually optimizes: on any contended plan the
    # reference allocator computes at least as many edge shares.
    assert fast.counters.shares_computed <= slow.counters.shares_computed
    return fast


class TestBuiltins:
    @pytest.mark.parametrize(
        "algo", ["ring-allreduce", "ring-allgather", "mesh-allreduce"]
    )
    def test_builtin_collectives(self, algo):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm(algo, cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        assert_bit_identical(plan, record_trace=True)

    def test_larger_fabric_with_background_traffic(self):
        cluster = Cluster(nodes=2, gpus_per_node=8)
        program = build_algorithm("mesh-allreduce", cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        from repro.runtime.simulator import simulate as sim

        fast = sim(plan)
        slow = sim(with_reference_solver(plan))
        assert report_fingerprint(fast) == report_fingerprint(slow)

    def test_epsilon_zero_is_default(self):
        config = SimConfig()
        assert config.incremental_rates is True
        assert config.rate_rel_epsilon == 0.0
        assert config.collapse_microbatches is False


class TestExactVariantMatrix:
    """Every exact-mode optimization axis pins the same report.

    Covers vectorized-vs-scalar re-rating, bucket-vs-heap event queues,
    and aggregated-vs-expanded micro-batch bookkeeping, over built-in
    collectives and a background-traffic run.
    """

    @pytest.mark.parametrize("variant", sorted(EXACT_VARIANTS))
    @pytest.mark.parametrize("algo", ["ring-allreduce", "hm-allreduce"])
    def test_builtin_variants(self, algo, variant):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm(algo, cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        base = simulate(plan, record_trace=True)
        other = simulate(
            with_config(plan, **EXACT_VARIANTS[variant]), record_trace=True
        )
        assert report_fingerprint(base) == report_fingerprint(other)

    @pytest.mark.parametrize("variant", sorted(EXACT_VARIANTS))
    def test_background_traffic_variants(self, variant):
        cluster = Cluster(nodes=2, gpus_per_node=8)
        program = build_algorithm("mesh-allreduce", cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        edge = next(iter(cluster.edges))
        traffic = [((edge,), 500.0)]
        base = simulate(plan, background_traffic=traffic)
        other = simulate(
            with_config(plan, **EXACT_VARIANTS[variant]),
            background_traffic=traffic,
        )
        assert report_fingerprint(base) == report_fingerprint(other)

    @pytest.mark.parametrize("algo", ["ring-allreduce", "mesh-allreduce"])
    def test_eager_invalidation_same_completion(self, algo):
        """The pre-PR event discipline reaches the same physical result.

        ``lazy_invalidation=False`` restores the repost-every-change /
        version-checked-dispatch discipline the scale benchmark uses as
        its wall-time baseline.  It computes completion ETAs at
        different instants (reconciled at every rate change, instead of
        earliest-wins), so the two trajectories differ in float rounding
        and in the tie-break order of simultaneous completions — the
        completion time agrees to model tolerance but is not bitwise
        pinned, which is why this mode is a baseline, not a member of
        ``EXACT_VARIANTS``.
        """
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm(algo, cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        base = simulate(plan)
        eager = simulate(with_config(plan, lazy_invalidation=False))
        assert base.completion_time_us == pytest.approx(
            eager.completion_time_us, rel=0.02
        )
        assert sorted(base.completion_order) == sorted(eager.completion_order)
        assert base.counters.flows_admitted == eager.counters.flows_admitted

    def test_vectorized_path_engages(self):
        """The auto threshold really switches to the numpy re-rater."""
        cluster = Cluster(nodes=2, gpus_per_node=8)
        program = build_algorithm("mesh-allreduce", cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        report = simulate(with_config(plan, vectorize_min_flows=0))
        assert report.counters.vectorized_passes > 0

    @pytest.mark.parametrize(
        "variant",
        ["vectorized-always", "bucket-queue", "expanded-bookkeeping"],
    )
    def test_fault_injected_variants(self, variant):
        """A fault-injected recovery run replays identically per axis."""
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm("ring-allreduce", cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        base = run_with_faults(
            plan, "link-flap", seed=1, recovery="fallback", record_trace=True
        )
        other = run_with_faults(
            with_config(plan, **EXACT_VARIANTS[variant]),
            "link-flap",
            seed=1,
            recovery="fallback",
            record_trace=True,
        )
        assert report_fingerprint(base.report) == report_fingerprint(
            other.report
        )


class TestDslCorpus:
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_corpus_program(self, path):
        program = parse_program(path.read_text())
        cluster = cluster_for(program)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 4 * MB)
        assert_bit_identical(plan)

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_corpus_vectorized_and_aggregated(self, path):
        """Vectorized-vs-scalar and aggregated-vs-expanded over the corpus."""
        program = parse_program(path.read_text())
        cluster = cluster_for(program)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 4 * MB)
        base = report_fingerprint(simulate(plan))
        vectorized = simulate(
            with_config(plan, vectorized_rates=True, vectorize_min_flows=0)
        )
        scalar = simulate(with_config(plan, vectorized_rates=False))
        expanded = simulate(with_config(plan, aggregate_microbatches=False))
        assert report_fingerprint(vectorized) == base
        assert report_fingerprint(scalar) == base
        assert report_fingerprint(expanded) == base


class TestFaultInjected:
    def test_chaos_run_is_bit_identical(self):
        """Fault injection, watchdog, and recovery replay identically.

        The fault schedule is seeded off the clean-run horizon, so both
        solver modes face the same injected events; the recovery path
        (fallback compile + resumed execution) must then complete at the
        same instant with the same flow history.
        """
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm("ring-allreduce", cluster)
        backend = ResCCLBackend(max_microbatches=4)
        plan = backend.plan(cluster, program, 8 * MB)

        fast = run_with_faults(
            plan, "link-flap", seed=1, recovery="fallback", record_trace=True
        )
        slow = run_with_faults(
            with_reference_solver(plan),
            "link-flap",
            seed=1,
            recovery="fallback",
            record_trace=True,
        )
        assert report_fingerprint(fast.report) == report_fingerprint(
            slow.report
        )
        assert report_fingerprint(fast.baseline) == report_fingerprint(
            slow.baseline
        )

"""Golden determinism: the incremental rate solver is bit-identical.

The headline invariant of the incremental dirty-edge allocator
(``repro.runtime.flows``) is that it is an *optimization*, not an
approximation: with the default ``rate_rel_epsilon=0.0``, a simulation
run with ``incremental_rates=True`` must produce a report bitwise equal
to the brute-force reference allocator that recomputes every edge share
and re-rates every live flow on each pass.  ``shares_computed`` is the
one counter allowed to differ (it is exactly the work the optimization
avoids).
"""

import dataclasses
from pathlib import Path

import pytest

from repro.algorithms import build_algorithm
from repro.core import ResCCLBackend
from repro.faults import run_with_faults
from repro.lang import parse_program
from repro.runtime import MB, SimConfig, simulate
from repro.topology import Cluster

CORPUS = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "algorithms").glob(
        "*.rescclang"
    )
)


def cluster_for(program):
    gpus = program.header.gpus_per_node
    if program.nranks % gpus:
        return Cluster(nodes=1, gpus_per_node=program.nranks)
    return Cluster(nodes=program.nranks // gpus, gpus_per_node=gpus)


def report_fingerprint(report):
    """Everything observable about a run, with exact float identity.

    ``dataclasses.asdict`` recurses through TB stats, link stats, trace
    events, fault stats, and counters; ``shares_computed`` is masked out
    as the solver's legitimate degree of freedom.
    """
    data = dataclasses.asdict(report)
    data["counters"].pop("shares_computed")
    data["mode"] = report.mode.value
    return data


def with_reference_solver(plan):
    """The same plan, solved by the brute-force reference allocator."""
    return dataclasses.replace(
        plan,
        config=dataclasses.replace(plan.config, incremental_rates=False),
    )


def assert_bit_identical(plan, record_trace=False):
    fast = simulate(plan, record_trace=record_trace)
    slow = simulate(with_reference_solver(plan), record_trace=record_trace)
    assert report_fingerprint(fast) == report_fingerprint(slow)
    # The optimization actually optimizes: on any contended plan the
    # reference allocator computes at least as many edge shares.
    assert fast.counters.shares_computed <= slow.counters.shares_computed
    return fast


class TestBuiltins:
    @pytest.mark.parametrize(
        "algo", ["ring-allreduce", "ring-allgather", "mesh-allreduce"]
    )
    def test_builtin_collectives(self, algo):
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm(algo, cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        assert_bit_identical(plan, record_trace=True)

    def test_larger_fabric_with_background_traffic(self):
        cluster = Cluster(nodes=2, gpus_per_node=8)
        program = build_algorithm("mesh-allreduce", cluster)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 8 * MB)
        from repro.runtime.simulator import simulate as sim

        fast = sim(plan)
        slow = sim(with_reference_solver(plan))
        assert report_fingerprint(fast) == report_fingerprint(slow)

    def test_epsilon_zero_is_default(self):
        config = SimConfig()
        assert config.incremental_rates is True
        assert config.rate_rel_epsilon == 0.0


class TestDslCorpus:
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_corpus_program(self, path):
        program = parse_program(path.read_text())
        cluster = cluster_for(program)
        plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 4 * MB)
        assert_bit_identical(plan)


class TestFaultInjected:
    def test_chaos_run_is_bit_identical(self):
        """Fault injection, watchdog, and recovery replay identically.

        The fault schedule is seeded off the clean-run horizon, so both
        solver modes face the same injected events; the recovery path
        (fallback compile + resumed execution) must then complete at the
        same instant with the same flow history.
        """
        cluster = Cluster(nodes=2, gpus_per_node=4)
        program = build_algorithm("ring-allreduce", cluster)
        backend = ResCCLBackend(max_microbatches=4)
        plan = backend.plan(cluster, program, 8 * MB)

        fast = run_with_faults(
            plan, "link-flap", seed=1, recovery="fallback", record_trace=True
        )
        slow = run_with_faults(
            with_reference_solver(plan),
            "link-flap",
            seed=1,
            recovery="fallback",
            record_trace=True,
        )
        assert report_fingerprint(fast.report) == report_fingerprint(
            slow.report
        )
        assert report_fingerprint(fast.baseline) == report_fingerprint(
            slow.baseline
        )

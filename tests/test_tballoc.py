"""Tests for state-based TB allocation (section 4.4)."""

import pytest

from repro.algorithms import hm_allgather, hm_allreduce, ring_allgather
from repro.core import (
    allocate_tbs,
    build_endpoint_groups,
    connection_endpoint_count,
    hpds_schedule,
)
from repro.ir.dag import build_dag
from repro.runtime.plan import Side
from repro.topology import multi_node, single_node


def compiled(program, cluster):
    dag = build_dag(program.transfers, cluster)
    pipeline = hpds_schedule(dag)
    return dag, pipeline


class TestEndpointGroups:
    def test_groups_cover_all_task_sides(self):
        dag, pipeline = compiled(ring_allgather(4), single_node(4))
        groups = build_endpoint_groups(dag, pipeline)
        sides = sum(len(g.task_ids) for g in groups)
        assert sides == 2 * len(dag)

    def test_ring_has_one_send_one_recv_endpoint_per_rank(self):
        dag, pipeline = compiled(ring_allgather(4), single_node(4))
        groups = build_endpoint_groups(dag, pipeline)
        rank0 = [g for g in groups if g.rank == 0]
        assert len(rank0) == 2
        assert {g.side for g in rank0} == {Side.SEND, Side.RECV}

    def test_window_ordering_within_group(self):
        dag, pipeline = compiled(hm_allreduce(2, 4), multi_node(2, 4))
        for group in build_endpoint_groups(dag, pipeline):
            keys = [pipeline.order_key(t) for t in group.task_ids]
            assert keys == sorted(keys)
            lo, hi = group.window
            assert lo <= hi


class TestAllocation:
    def test_hm_allreduce_matches_table3_tb_count(self):
        """Table 3 Topo2 (2 servers x 8 GPUs), expert AllReduce: ResCCL
        uses 16 TBs per rank (8 send + 8 recv endpoints), vs MSCCL's 30."""
        dag, pipeline = compiled(hm_allreduce(2, 8), multi_node(2, 8))
        assignments = allocate_tbs(dag, pipeline)
        per_rank = [
            len([a for a in assignments if a.rank == r]) for r in range(16)
        ]
        assert max(per_rank) == 16

    def test_hm_topo1_matches_table3(self):
        """Table 3 Topo1 (2 servers x 4 GPUs): ResCCL 8 TBs per rank."""
        dag, pipeline = compiled(hm_allreduce(2, 4), multi_node(2, 4))
        assignments = allocate_tbs(dag, pipeline)
        per_rank = [
            len([a for a in assignments if a.rank == r]) for r in range(8)
        ]
        assert max(per_rank) == 8

    def test_never_more_than_connection_count(self):
        for program, cluster in [
            (hm_allgather(2, 4), multi_node(2, 4)),
            (hm_allreduce(2, 8), multi_node(2, 8)),
            (ring_allgather(8), single_node(8)),
        ]:
            dag, pipeline = compiled(program, cluster)
            assignments = allocate_tbs(dag, pipeline)
            assert len(assignments) <= connection_endpoint_count(dag)

    def test_merged_groups_have_disjoint_windows(self):
        dag, pipeline = compiled(hm_allreduce(2, 8), multi_node(2, 8))
        for tb in allocate_tbs(dag, pipeline):
            for earlier, later in zip(tb.groups, tb.groups[1:]):
                assert earlier.window[1] < later.window[0]

    def test_all_task_sides_assigned_exactly_once(self):
        dag, pipeline = compiled(hm_allreduce(2, 4), multi_node(2, 4))
        assignments = allocate_tbs(dag, pipeline)
        seen = set()
        for tb in assignments:
            for task_id, side in tb.ordered_sides():
                key = (task_id, side)
                assert key not in seen
                seen.add(key)
        assert len(seen) == 2 * len(dag)

    def test_merging_happens_for_serial_connections(self):
        """A program whose connections are active in disjoint phases
        merges them onto shared TBs."""
        from repro.ir.task import Collective, CommType
        from repro.lang.builder import AlgoProgram

        # Rank 0 streams chunks 0-3 to rank 1 (slots 0-3 on one link);
        # only after the last one does rank 1 bounce chunk 3 back, and
        # rank 0 forwards it to rank 2 — so the 0->2 send endpoint's
        # active window starts after the 0->1 endpoint's window ends.
        program = AlgoProgram.create(4, Collective.ALLGATHER, name="phased")
        for step in range(4):
            program.transfer(0, 1, step, step, CommType.RECV)
        program.transfer(1, 0, 4, 3, CommType.RRC)
        program.transfer(0, 2, 5, 3, CommType.RECV)
        dag = build_dag(program.transfers, single_node(4))
        pipeline = hpds_schedule(dag)
        assignments = allocate_tbs(dag, pipeline)
        rank0 = [a for a in assignments if a.rank == 0]
        merged = [a for a in rank0 if len(a.groups) > 1]
        assert merged, "expected at least one merged TB on rank 0"

    def test_labels_describe_endpoints(self):
        dag, pipeline = compiled(ring_allgather(4), single_node(4))
        labels = {tb.label for tb in allocate_tbs(dag, pipeline)}
        assert any("send->r" in label for label in labels)
        assert any("recv<-r" in label for label in labels)


class TestIndexedEquivalence:
    """The sorted-index merge reproduces the reference best-fit exactly."""

    def _fingerprint(self, assignments):
        return [
            (
                tb.rank,
                [
                    (g.side, g.peer, tuple(g.task_ids), g.window)
                    for g in tb.groups
                ],
            )
            for tb in assignments
        ]

    @pytest.mark.parametrize("allowance", [0, 1, 3, 16])
    def test_identical_assignments_across_allowances(self, allowance):
        for program, cluster in [
            (hm_allreduce(2, 8), multi_node(2, 8)),
            (hm_allgather(2, 4), multi_node(2, 4)),
            (ring_allgather(8), single_node(8)),
        ]:
            dag, pipeline = compiled(program, cluster)
            indexed = allocate_tbs(
                dag, pipeline, pipelining_allowance=allowance, indexed=True
            )
            reference = allocate_tbs(
                dag, pipeline, pipelining_allowance=allowance, indexed=False
            )
            assert self._fingerprint(indexed) == self._fingerprint(reference)

    def test_timeline_slots_pipeline_order(self):
        """ordered_task_ids() is the (sub-pipeline, slot) sort the old
        implementation recomputed, so slots are unchanged."""
        from repro.core.tballoc import timeline_slots

        dag, pipeline = compiled(hm_allreduce(2, 4), multi_node(2, 4))
        slots = timeline_slots(dag, pipeline)
        resorted = sorted(
            (t.task_id for t in dag.tasks), key=pipeline.order_key
        )
        assert resorted == pipeline.ordered_task_ids()
        assert set(slots) == {t.task_id for t in dag.tasks}

"""Edge-case tests for simulator internals and runtime configuration."""

import pytest

from repro import MB, ResCCLBackend, multi_node, simulate
from repro.algorithms import hm_allgather, hm_allreduce, ring_allgather
from repro.ir.dag import build_dag
from repro.runtime.plan import (
    ExecutionPlan,
    Invocation,
    Side,
    SimConfig,
    TBProgram,
)
from repro.runtime.simulator import Simulator
from repro.topology import single_node, v100_profile


class TestSimConfigKnobs:
    @pytest.fixture(scope="class")
    def setup(self):
        cluster = multi_node(2, 4)
        program = hm_allreduce(2, 4)
        return cluster, program

    def run(self, setup, **config_kwargs):
        cluster, program = setup
        backend = ResCCLBackend(
            max_microbatches=4, config=SimConfig(**config_kwargs)
        )
        return simulate(backend.plan(cluster, program, 32 * MB))

    def test_higher_gamma_slower(self, setup):
        mild = self.run(setup, gamma=0.0)
        harsh = self.run(setup, gamma=0.5)
        assert harsh.completion_time_us >= mild.completion_time_us

    def test_deeper_fifo_not_slower(self, setup):
        shallow = self.run(setup, fifo_depth=1)
        deep = self.run(setup, fifo_depth=4)
        assert deep.completion_time_us <= shallow.completion_time_us * 1.01

    def test_kernel_load_shifts_completion(self, setup):
        fast = self.run(setup, kernel_load_us=0.0)
        slow = self.run(setup, kernel_load_us=200.0)
        assert slow.completion_time_us > fast.completion_time_us

    def test_negative_gamma_rejected(self, setup):
        with pytest.raises(ValueError):
            self.run(setup, gamma=-1.0)


class TestV100Runtime:
    def test_v100_slower_than_a100(self):
        program = hm_allgather(2, 4)
        a100 = simulate(
            ResCCLBackend(max_microbatches=4).plan(
                multi_node(2, 4), program, 64 * MB
            )
        )
        v100 = simulate(
            ResCCLBackend(max_microbatches=4).plan(
                multi_node(2, 4, profile=v100_profile()), program, 64 * MB
            )
        )
        assert v100.algo_bandwidth < a100.algo_bandwidth


class TestSimulatorRobustness:
    def _single_transfer_plan(self, n_mb=3):
        cluster = single_node(2)
        program = ring_allgather(2)
        dag = build_dag(program.transfers, cluster)
        t01 = next(t for t in dag.tasks if t.src == 0)
        t10 = next(t for t in dag.tasks if t.src == 1)
        tbs = [
            TBProgram(0, 0, [Invocation(t01.task_id, Side.SEND, mb) for mb in range(n_mb)], 16),
            TBProgram(1, 0, [Invocation(t01.task_id, Side.RECV, mb) for mb in range(n_mb)], 16),
            TBProgram(1, 1, [Invocation(t10.task_id, Side.SEND, mb) for mb in range(n_mb)], 16),
            TBProgram(0, 1, [Invocation(t10.task_id, Side.RECV, mb) for mb in range(n_mb)], 16),
        ]
        return ExecutionPlan(
            name="single",
            cluster=cluster,
            program=program,
            dag=dag,
            n_microbatches=n_mb,
            chunk_bytes=MB,
            tb_programs=tbs,
        )

    def test_simulator_reusable_plan(self):
        """Simulating the same plan twice gives identical results."""
        plan = self._single_transfer_plan()
        first = Simulator(plan).run()
        second = Simulator(plan).run()
        assert first.completion_time_us == pytest.approx(
            second.completion_time_us
        )
        assert first.completion_order == second.completion_order

    def test_determinism_across_runs(self):
        cluster = multi_node(2, 4)
        program = hm_allreduce(2, 4)
        backend = ResCCLBackend(max_microbatches=4)
        a = simulate(backend.plan(cluster, program, 32 * MB))
        b = simulate(backend.plan(cluster, program, 32 * MB))
        assert a.completion_time_us == pytest.approx(b.completion_time_us)

    def test_empty_tb_program_allowed(self):
        """A plan whose rank has no work still completes."""
        plan = self._single_transfer_plan()
        plan.tb_programs.append(
            TBProgram(rank=0, tb_index=2, invocations=[], nwarps=16)
        )
        report = simulate(plan)
        assert report.completion_time_us > 0

    def test_link_busy_bounded_by_completion(self):
        plan = self._single_transfer_plan()
        report = simulate(plan)
        for stats in report.link_stats.values():
            assert stats.busy_time <= report.completion_time_us + 1e-6

    def test_infinite_background_flow_never_finishes(self):
        plan = self._single_transfer_plan()
        report = simulate(
            plan, background_traffic=[(("nv:out:0",), 1000.0)]
        )
        assert report.completion_time_us > 0  # run still terminates

"""Shared test fixtures."""

import pytest

from repro.core import plancache
from repro.tuning import table as tuning_table


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    """Isolate tests from the process-wide compiled-plan cache.

    The cache is content-addressed and global, so without a reset a test
    that asserts on compile-time side effects (phase spans, phase times)
    could observe a hit produced by an unrelated earlier test.
    """
    plancache.get_cache().clear()
    yield
    plancache.get_cache().clear()


@pytest.fixture(autouse=True)
def _no_tuning_table():
    """Keep the process-wide tuning table uninstalled between tests.

    A table a test installs (configure_tuning) would otherwise rewrite
    every later test's plans for the cells it covers.
    """
    tuning_table.configure_tuning(None)
    yield
    tuning_table.configure_tuning(None)

"""Shared test fixtures."""

import pytest

from repro.core import plancache


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    """Isolate tests from the process-wide compiled-plan cache.

    The cache is content-addressed and global, so without a reset a test
    that asserts on compile-time side effects (phase spans, phase times)
    could observe a hit produced by an unrelated earlier test.
    """
    plancache.get_cache().clear()
    yield
    plancache.get_cache().clear()

"""The plan autotuner: tables, search, tuned serving (repro.tuning).

Layered like the subsystem: the persistent table's quarantine discipline
mirrors the plan-cache tests; the tuner's two-stage search is exercised
on a tiny cell; tuned serving is checked at the backend, the protocol
executor, and the live daemon (including the fingerprint-mismatch
startup rejection).
"""

import dataclasses
import json

import pytest

from repro.algorithms import build_algorithm
from repro.core import ResCCLBackend
from repro.obs.metrics import collecting
from repro.runtime import MB, simulate
from repro.tuning.table import (
    TUNING_FORMAT_VERSION,
    TunedConfig,
    TuningTable,
    cell_key,
    configure_tuning,
    get_table,
    make_entry,
    spec_collective,
)
from repro.tuning.tuner import Cell, candidate_space, default_config, tune

#: A cell small enough to tune in well under a second.
SMALL = Cell(collective="allgather", buffer_mb=8, nodes=1, gpus=4)

#: Grids kept tiny so a full tune() is a handful of simulations.
FAST_GRID = dict(
    schedulers=("hpds",),
    mbs_grid=(2, 4),
    chunk_kb_grid=(1024,),
    tb_allowance_grid=(None,),
)


def tune_small(path, **overrides):
    kwargs = dict(FAST_GRID, jobs=1)
    kwargs.update(overrides)
    return tune([SMALL], path, **kwargs)


@pytest.fixture
def table_path(tmp_path):
    return tmp_path / "table.json"


# ----------------------------------------------------------------------
# Table: keys, round trip, quarantine
# ----------------------------------------------------------------------


class TestCellKey:
    def test_case_insensitive_collective(self):
        # Collective.ALLGATHER.value is "Allgather"; the CLI says
        # "allgather" — both must address the same cell.
        assert cell_key("Allgather", 1 << 20, "t") == cell_key(
            "allgather", 1 << 20, "t"
        )

    def test_covers_size_and_topology(self):
        base = cell_key("allreduce", 1 << 20, "t")
        assert cell_key("allreduce", 2 << 20, "t") != base
        assert cell_key("allreduce", 1 << 20, "u") != base

    def test_spec_collective(self):
        assert spec_collective("hm-allreduce") == "allreduce"
        assert spec_collective("taccl:allgather") == "allgather"
        assert spec_collective("/tmp/foo.rescclang") is None
        assert spec_collective("") is None


def small_entry(tuned_us=50.0, default_us=100.0):
    cluster = SMALL.cluster()
    return make_entry(
        SMALL.collective,
        SMALL.buffer_bytes,
        cluster,
        TunedConfig(algorithm="mesh-allgather", max_microbatches=2),
        tuned_us=tuned_us,
        default_us=default_us,
        default_algorithm="ring-allgather",
    )


class TestTableRoundTrip:
    def test_save_load_lookup(self, table_path):
        table = TuningTable(table_path)
        table.put(small_entry())
        table.save()
        loaded = TuningTable.load(table_path)
        assert len(loaded) == 1
        config = loaded.lookup(
            "allgather", SMALL.buffer_bytes, SMALL.cluster()
        )
        assert config == TunedConfig(
            algorithm="mesh-allgather", max_microbatches=2
        )
        assert loaded.stats.hits == 1

    def test_miss_on_other_cell(self, table_path):
        table = TuningTable(table_path)
        table.put(small_entry())
        assert table.lookup("allreduce", SMALL.buffer_bytes,
                            SMALL.cluster()) is None
        assert table.stats.misses == 1

    def test_lookup_metrics_published(self, table_path):
        table = TuningTable(table_path)
        table.put(small_entry())
        with collecting() as registry:
            table.lookup("allgather", SMALL.buffer_bytes, SMALL.cluster())
            table.lookup("allreduce", SMALL.buffer_bytes, SMALL.cluster())
        assert registry.counter("tuning_table_hits_total").value() == 1
        assert registry.counter("tuning_table_misses_total").value() == 1

    def test_lookup_key_counts_nothing(self, table_path):
        table = TuningTable(table_path)
        table.put(small_entry())
        key = table.lookup_key("allgather", SMALL.buffer_bytes,
                               SMALL.cluster())
        assert key in table.entries
        assert table.stats.hits == 0 and table.stats.misses == 0

    def test_missing_file_is_empty_not_quarantined(self, tmp_path):
        table = TuningTable.load(tmp_path / "nope.json")
        assert len(table) == 0
        assert table.stats.corrupt == 0
        assert not (tmp_path / "nope.json.corrupt").exists()


class TestQuarantine:
    """Damage degrades to silent misses, mirroring tests/test_plancache.py."""

    def test_garbage_file_is_quarantined(self, table_path):
        table_path.write_text("not json{", encoding="utf-8")
        with collecting() as registry:
            table = TuningTable.load(table_path)
        assert len(table) == 0
        assert table.stats.corrupt == 1
        assert not table_path.exists()
        assert table_path.with_suffix(".json.corrupt").exists()
        assert registry.counter("tuning_table_corrupt_total").value() == 1

    def test_version_mismatch_is_quarantined(self, table_path):
        table = TuningTable(table_path)
        table.put(small_entry())
        table.save()
        payload = json.loads(table_path.read_text(encoding="utf-8"))
        payload["version"] = TUNING_FORMAT_VERSION + 1
        table_path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = TuningTable.load(table_path)
        assert len(loaded) == 0
        assert loaded.stats.corrupt == 1
        assert table_path.with_suffix(".json.corrupt").exists()

    def test_tampered_entry_is_dropped(self, table_path):
        table = TuningTable(table_path)
        table.put(small_entry())
        table.save()
        payload = json.loads(table_path.read_text(encoding="utf-8"))
        (key, entry), = payload["entries"].items()
        entry["buffer_bytes"] += 1  # key self-check no longer reproduces
        table_path.write_text(json.dumps(payload), encoding="utf-8")
        with collecting() as registry:
            loaded = TuningTable.load(table_path)
        assert len(loaded) == 0
        assert loaded.stats.dropped_entries == 1
        # The file itself is fine — only the entry is dropped.
        assert table_path.exists()
        assert registry.counter("tuning_table_corrupt_total").value() == 1

    def test_mismatched_entries_detect_fingerprint_drift(self, table_path):
        table = TuningTable(table_path)
        good = small_entry()
        table.put(good)
        assert table.mismatched_entries() == []
        # An entry recorded under a topology fingerprint its own cluster
        # shape no longer reproduces (e.g. tuned under different
        # hardware constants) — self-consistent key, stale topology.
        bad = dict(good, topology="0" * 64)
        bad["key"] = cell_key(bad["collective"], bad["buffer_bytes"],
                              bad["topology"])
        table.put(bad)
        assert table.mismatched_entries() == [bad]


# ----------------------------------------------------------------------
# Tuner: search, resume, determinism
# ----------------------------------------------------------------------


class TestCandidateSpace:
    def test_default_is_first_and_pruned_space_is_deduped(self):
        candidates = candidate_space(SMALL, **FAST_GRID)
        assert candidates[0] == default_config(SMALL.collective)
        # mbs 2 vs 4 both cap an 8 MB / 4-chunk plan at 2 micro-batches
        # for some algorithms; whatever survives must be unique shapes.
        assert len(candidates) == len(set(candidates))

    def test_multi_node_adds_hierarchical_arm(self):
        cell = Cell(collective="allreduce", buffer_mb=8, nodes=2, gpus=4)
        names = {c.algorithm for c in candidate_space(cell, **FAST_GRID)}
        assert "hm-allreduce" in names
        single = Cell(collective="allreduce", buffer_mb=8, nodes=1, gpus=4)
        names = {c.algorithm for c in candidate_space(single, **FAST_GRID)}
        assert "hm-allreduce" not in names  # needs >= 2 nodes


class TestTune:
    def test_winner_never_loses_to_default(self, table_path):
        report = tune_small(table_path)
        (result,) = report.results
        assert result.status == "scored"
        assert result.entry["tuned_us"] <= result.entry["default_us"]
        assert result.screened == result.candidates
        assert 0 < result.exact_scored <= result.screened
        assert result.search_cost_s > 0

    def test_resume_skips_tuned_cells_and_keeps_bytes(self, table_path):
        tune_small(table_path)
        before = table_path.read_bytes()
        report = tune_small(table_path)
        assert report.results[0].status == "skipped"
        assert table_path.read_bytes() == before

    def test_force_rescores(self, table_path):
        tune_small(table_path)
        report = tune_small(table_path, force=True)
        assert report.results[0].status == "scored"

    def test_tables_are_byte_identical_across_runs(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        tune_small(a)
        tune_small(b)
        assert a.read_bytes() == b.read_bytes()

    def test_exact_only_agrees_with_screened_search(self, tmp_path):
        screened, exact = tmp_path / "s.json", tmp_path / "e.json"
        tune_small(screened, screen_fidelity="fast")
        tune_small(exact, screen_fidelity="exact")
        pick = lambda p: json.loads(p.read_text())["entries"]  # noqa: E731
        (sw,) = pick(screened).values()
        (ew,) = pick(exact).values()
        assert sw["config"] == ew["config"]
        # Winners are re-scored under exact fidelity either way, so the
        # recorded times agree too.
        assert sw["tuned_us"] == ew["tuned_us"]

    def test_tuner_metrics_published(self, table_path):
        with collecting() as registry:
            tune_small(table_path)
        assert registry.counter("tuning_cells_scored_total").value() == 1
        assert registry.counter(
            "tuning_candidates_screened_total").value() > 0


# ----------------------------------------------------------------------
# Tuned serving: backend + module-level install
# ----------------------------------------------------------------------


class TestBackendServing:
    def test_plan_substitutes_tuned_winner(self, table_path):
        tune_small(table_path)
        configure_tuning(table_path)
        cluster = SMALL.cluster()
        program = build_algorithm("ring-allgather", cluster)
        with collecting() as registry:
            plan = ResCCLBackend().plan(cluster, program, SMALL.buffer_mb * MB)
        winner = get_table().entries
        (entry,) = winner.values()
        assert plan.name == f"ResCCL/{entry['config']['algorithm']}"
        assert registry.counter("tuning_table_hits_total").value() == 1
        # The tuned plan really is the faster one the tuner measured.
        assert simulate(plan).completion_time_us == entry["tuned_us"]

    def test_use_tuning_false_ignores_table(self, table_path):
        tune_small(table_path)
        configure_tuning(table_path)
        cluster = SMALL.cluster()
        program = build_algorithm("ring-allgather", cluster)
        plan = ResCCLBackend(use_tuning=False).plan(
            cluster, program, SMALL.buffer_mb * MB
        )
        assert plan.name == "ResCCL/ring-allgather"

    def test_no_table_is_bit_identical_to_untuned(self):
        # configure_tuning(None) is the ambient state (conftest); the
        # tuned-aware plan path must reproduce the untuned plan exactly.
        cluster = SMALL.cluster()
        program = build_algorithm("ring-allgather", cluster)
        plan = ResCCLBackend().plan(cluster, program, SMALL.buffer_mb * MB)
        untuned = ResCCLBackend(use_tuning=False).plan(
            cluster, program, SMALL.buffer_mb * MB
        )
        assert plan.name == untuned.name
        assert plan.dag is untuned.dag  # same cached CompileResult
        assert plan.program is untuned.program
        assert plan.n_microbatches == untuned.n_microbatches
        assert plan.chunk_bytes == untuned.chunk_bytes
        assert plan.tb_programs == untuned.tb_programs
        assert simulate(plan).completion_time_us == \
            simulate(untuned).completion_time_us

    def test_untuned_cells_pass_through(self, table_path):
        tune_small(table_path)
        configure_tuning(table_path)
        cluster = SMALL.cluster()
        program = build_algorithm("ring-reducescatter", cluster)
        plan = ResCCLBackend().plan(cluster, program, SMALL.buffer_mb * MB)
        assert plan.name == "ResCCL/ring-reducescatter"
        assert get_table().stats.misses == 1


# ----------------------------------------------------------------------
# Tuned serving: the service layer
# ----------------------------------------------------------------------


class TestServiceExecute:
    def test_compile_op_warms_the_tuned_plan(self, table_path):
        from repro.service.protocol import execute

        tune_small(table_path)
        configure_tuning(table_path)
        result = execute({
            "op": "compile", "algorithm": "ring-allgather",
            "nodes": SMALL.nodes, "gpus": SMALL.gpus,
            "buffer_mb": SMALL.buffer_mb, "mbs": 8,
        })
        (entry,) = get_table().entries.values()
        assert result["tuned"] is True
        assert result["algorithm"] == entry["config"]["algorithm"]

    def test_simulate_op_reports_tuned_plan(self, table_path):
        from repro.service.protocol import execute

        tune_small(table_path)
        configure_tuning(table_path)
        result = execute({
            "op": "simulate", "algorithm": "ring-allgather",
            "nodes": SMALL.nodes, "gpus": SMALL.gpus,
            "buffer_mb": SMALL.buffer_mb, "mbs": 8,
        })
        (entry,) = get_table().entries.values()
        assert result["tuned"] is True
        assert result["plan"] == f"ResCCL/{entry['config']['algorithm']}"
        assert result["completion_time_us"] == entry["tuned_us"]

    def test_degraded_requests_are_never_tuned(self, table_path):
        from repro.service.protocol import execute

        tune_small(table_path)
        configure_tuning(table_path)
        result = execute({
            "op": "simulate", "algorithm": "ring-allgather",
            "nodes": SMALL.nodes, "gpus": SMALL.gpus,
            "buffer_mb": SMALL.buffer_mb, "mbs": 8, "degraded": True,
        })
        assert result["tuned"] is False

    def test_tuned_requests_coalesce_under_cell_key(self, table_path):
        from repro.service.protocol import (
            parse_request,
            request_fingerprint,
        )

        tune_small(table_path)
        table = TuningTable.load(table_path)
        cluster = SMALL.cluster()
        a = parse_request("simulate", {
            "algorithm": "ring-allgather", "nodes": SMALL.nodes,
            "gpus": SMALL.gpus, "buffer_mb": SMALL.buffer_mb, "mbs": 4,
        })
        b = parse_request("simulate", {
            "algorithm": "mesh-allgather", "nodes": SMALL.nodes,
            "gpus": SMALL.gpus, "buffer_mb": SMALL.buffer_mb, "mbs": 16,
        })
        # Different plan source + knobs, same tuned cell: one compile.
        assert request_fingerprint(a, cluster, tuning_table=table) == \
            request_fingerprint(b, cluster, tuning_table=table)
        assert request_fingerprint(a, cluster) != \
            request_fingerprint(b, cluster)
        # Ops still shape the key.
        c = dataclasses.replace(a, op="profile")
        assert request_fingerprint(a, cluster, tuning_table=table) != \
            request_fingerprint(c, cluster, tuning_table=table)


@pytest.mark.slow
class TestServiceDaemon:
    def test_mismatched_table_fails_startup_with_exit_2(
        self, tmp_path, table_path
    ):
        from repro.service import ServiceConfig, ServiceDaemon
        from repro.tuning.table import TuningTableError

        table = TuningTable(table_path)
        bad = small_entry()
        bad["topology"] = "0" * 64
        bad["key"] = cell_key(bad["collective"], bad["buffer_bytes"],
                              bad["topology"])
        table.put(bad)
        table.save()
        config = ServiceConfig(port=0, workers=1,
                               tuning_table=str(table_path))
        with pytest.raises(TuningTableError):
            ServiceDaemon(config).start()
        assert ServiceDaemon(config).run_forever() == 2

    def test_missing_table_fails_startup_with_exit_2(self, tmp_path):
        from repro.service import ServiceConfig, ServiceDaemon

        config = ServiceConfig(
            port=0, workers=1, tuning_table=str(tmp_path / "nope.json")
        )
        assert ServiceDaemon(config).run_forever() == 2

    def test_daemon_serves_tuned_plans_and_prewarms_cells(self, table_path):
        from repro.service import ServiceClient, ServiceConfig, ServiceDaemon

        tune_small(table_path)
        (entry,) = TuningTable.load(table_path).entries.values()
        daemon = ServiceDaemon(ServiceConfig(
            port=0, workers=1, tuning_table=str(table_path),
            default_deadline_ms=60_000.0,
        ))
        daemon.start()
        try:
            # Boot prewarm compiled every tuned cell before readiness.
            assert daemon.lifecycle.prewarmed == 1
            with ServiceClient("127.0.0.1", daemon.port) as client:
                reply = client.simulate(
                    "ring-allgather", nodes=SMALL.nodes, gpus=SMALL.gpus,
                    buffer_mb=SMALL.buffer_mb,
                )
                assert reply["ok"]
                result = reply["result"]
                assert result["tuned"] is True
                assert result["plan"] == \
                    f"ResCCL/{entry['config']['algorithm']}"
            assert "tuning_table_hits_total" in daemon.registry.to_json()
        finally:
            daemon.stop()

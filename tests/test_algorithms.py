"""Correctness of every built-in collective algorithm.

An algorithm is correct when symbolically executing its transfers in step
order establishes the collective's postcondition (section: Problem/Goal —
data dependencies encode exactly this).
"""

import pytest

from repro.algorithms import (
    available_algorithms,
    build_algorithm,
    double_binary_tree_allreduce,
    hm_allgather,
    hm_allreduce,
    hm_reducescatter,
    ring_allgather,
    ring_allreduce,
    ring_reducescatter,
)
from repro.ir.task import Collective, CommType
from repro.lang.validate import validate_program
from repro.runtime.memory import verify_collective
from repro.topology import multi_node


def assert_correct(program):
    result = verify_collective(program)
    assert result.ok, result.errors[:5]
    report = validate_program(program)
    assert report.ok, report.issues[:5]


class TestRing:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 8, 16])
    def test_allgather(self, nranks):
        assert_correct(ring_allgather(nranks))

    @pytest.mark.parametrize("nranks", [2, 3, 4, 8, 16])
    def test_reducescatter(self, nranks):
        assert_correct(ring_reducescatter(nranks))

    @pytest.mark.parametrize("nranks", [2, 3, 4, 8, 16])
    def test_allreduce(self, nranks):
        assert_correct(ring_allreduce(nranks))

    def test_allgather_step_count(self):
        # Ring AllGather finishes in N-1 steps.
        program = ring_allgather(8)
        assert program.max_step == 6

    def test_allreduce_is_rs_then_ag(self):
        program = ring_allreduce(4)
        rrc_steps = {t.step for t in program.transfers if t.op is CommType.RRC}
        recv_steps = {t.step for t in program.transfers if t.op is CommType.RECV}
        assert max(rrc_steps) < min(recv_steps)
        assert program.stage_starts == [0, 3]

    def test_neighbours_only(self):
        program = ring_allgather(8)
        for t in program.transfers:
            assert t.dst == (t.src + 1) % 8


class TestTree:
    @pytest.mark.parametrize("nranks", [2, 3, 5, 8, 12, 16])
    def test_allreduce(self, nranks):
        assert_correct(double_binary_tree_allreduce(nranks))

    def test_two_trees_split_chunks(self):
        program = double_binary_tree_allreduce(8)
        # Even chunks route over tree 0 (root rank 0): rank 0 never sends
        # an even chunk upward (it is the root), but it does for odd ones.
        even_rrc_srcs = {
            t.src
            for t in program.transfers
            if t.op is CommType.RRC and t.chunk % 2 == 0
        }
        assert 0 not in even_rrc_srcs

    def test_rejects_single_rank(self):
        with pytest.raises(ValueError):
            double_binary_tree_allreduce(1)


class TestHierarchicalMesh:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 4), (2, 8), (4, 4), (4, 8), (3, 4)])
    def test_allgather(self, shape):
        assert_correct(hm_allgather(*shape))

    @pytest.mark.parametrize("shape", [(2, 2), (2, 4), (2, 8), (4, 4), (4, 8), (3, 4)])
    def test_reducescatter(self, shape):
        assert_correct(hm_reducescatter(*shape))

    @pytest.mark.parametrize("shape", [(2, 2), (2, 4), (2, 8), (4, 4), (4, 8), (3, 4)])
    def test_allreduce(self, shape):
        assert_correct(hm_allreduce(*shape))

    def test_allreduce_has_four_stages(self):
        program = hm_allreduce(4, 8)
        assert len(program.stage_starts) == 4
        # Figure 16 stage boundaries for nNodes=4, G=8.
        assert program.stage_starts == [0, 28, 31, 34]

    def test_intra_transfers_stay_in_node(self):
        program = hm_allgather(2, 4)
        cluster = multi_node(2, 4)
        stage2_start = program.stage_starts[1]
        for t in program.transfers:
            if t.step >= stage2_start:  # Broadcast 2 is intra-only
                assert cluster.same_node(t.src, t.dst)

    def test_inter_transfers_ring_aligned(self):
        program = hm_allreduce(2, 8)
        cluster = multi_node(2, 8)
        for t in program.transfers:
            if not cluster.same_node(t.src, t.dst):
                assert cluster.local_index(t.src) == cluster.local_index(t.dst)

    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            hm_allreduce(1, 8)

    def test_rejects_single_gpu_nodes(self):
        with pytest.raises(ValueError):
            hm_allgather(2, 1)


class TestRegistry:
    def test_lists_all_builtins(self):
        names = available_algorithms()
        assert "ring-allreduce" in names
        assert "hm-allgather" in names
        assert "tree-allreduce" in names

    @pytest.mark.parametrize("name", [
        "ring-allgather",
        "ring-reducescatter",
        "ring-allreduce",
        "tree-allreduce",
        "hm-allgather",
        "hm-reducescatter",
        "hm-allreduce",
    ])
    def test_build_and_verify(self, name):
        cluster = multi_node(2, 4)
        program = build_algorithm(name, cluster)
        assert program.nranks == cluster.world_size
        assert_correct(program)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_algorithm("quantum-allreduce", multi_node(2, 4))

    def test_hierarchical_requires_multi_node(self):
        from repro.topology import single_node

        with pytest.raises(ValueError, match="multi-node"):
            build_algorithm("hm-allreduce", single_node(8))

    def test_collectives_declared(self):
        cluster = multi_node(2, 4)
        assert (
            build_algorithm("hm-allreduce", cluster).collective
            is Collective.ALLREDUCE
        )
        assert (
            build_algorithm("hm-allgather", cluster).collective
            is Collective.ALLGATHER
        )

"""Smoke tests: every example script runs end-to-end and prints sense."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["32"], capsys)
        assert "ResCCL" in out
        assert "vs NCCL" in out
        assert "faster than MSCCL" in out

    def test_custom_algorithm(self, capsys):
        out = run_example("custom_algorithm.py", capsys=capsys)
        assert "Collective semantics verified" in out
        assert "switch (blockIdx.x)" in out
        assert "GB/s" in out

    def test_schedule_inspection(self, capsys):
        out = run_example("schedule_inspection.py", capsys=capsys)
        assert "sub-pipeline 0" in out
        assert "resccl:send->r1" in out
        assert "hpds" in out and "rr" in out

    @pytest.mark.slow
    def test_synthesized_algorithms(self, capsys):
        out = run_example("synthesized_algorithms.py", capsys=capsys)
        assert "taccl-allgather" in out
        assert "speedup" in out

    @pytest.mark.slow
    def test_megatron_training(self, capsys):
        out = run_example("megatron_training.py", capsys=capsys)
        assert "T5" in out and "GPT-3" in out
        assert "vs NCCL" in out

    @pytest.mark.slow
    def test_contention_study(self, capsys):
        out = run_example("contention_study.py", capsys=capsys)
        assert "gamma" in out
        assert "ResCCL loaded" in out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestAlgos:
    def test_lists_builtins(self, capsys):
        assert main(["algos"]) == 0
        out = capsys.readouterr().out
        assert "hm-allreduce" in out
        assert "taccl:" in out


class TestVerify:
    def test_builtin_algorithm(self, capsys):
        assert main(["verify", "hm-allgather", "--nodes", "2", "--gpus", "4"]) == 0
        out = capsys.readouterr().out
        assert "static validation: ok" in out
        assert "collective semantics: ok" in out

    def test_synthesizer_spec(self, capsys):
        assert main(["verify", "teccl:allgather", "--nodes", "2", "--gpus", "4"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_dsl_file(self, tmp_path, capsys):
        from repro.algorithms import ring_allgather

        path = tmp_path / "ring.rescclang"
        path.write_text(ring_allgather(8).to_source())
        assert main(["verify", str(path), "--nodes", "1", "--gpus", "8"]) == 0

    def test_broken_dsl_file_fails(self, tmp_path, capsys):
        from repro.ir.task import Collective
        from repro.lang import AlgoProgram

        broken = AlgoProgram.create(8, Collective.ALLGATHER)
        broken.transfer(0, 1, 0, 0)  # incomplete AllGather
        path = tmp_path / "broken.rescclang"
        path.write_text(broken.to_source())
        assert main(["verify", str(path), "--nodes", "1", "--gpus", "8"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_unknown_spec(self):
        with pytest.raises(SystemExit, match="not a built-in"):
            main(["verify", "does-not-exist"])


class TestCompile:
    def test_compile_summary(self, capsys):
        assert main(["compile", "ring-allgather", "--nodes", "1", "--gpus", "8"]) == 0
        out = capsys.readouterr().out
        assert "sub-pipelines" in out
        assert "scheduling" in out

    def test_compile_kernel_listing(self, capsys):
        assert (
            main(
                [
                    "compile",
                    "ring-allgather",
                    "--nodes",
                    "1",
                    "--gpus",
                    "4",
                    "--kernel",
                    "--rank",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "switch (blockIdx.x)" in out

    def test_rr_scheduler(self, capsys):
        assert (
            main(
                [
                    "compile",
                    "ring-allgather",
                    "--scheduler",
                    "rr",
                    "--nodes",
                    "1",
                    "--gpus",
                    "4",
                ]
            )
            == 0
        )


class TestRunAndCompare:
    def test_run_resccl(self, capsys):
        assert (
            main(
                [
                    "run",
                    "hm-allreduce",
                    "--buffer-mb",
                    "16",
                    "--mbs",
                    "2",
                    "--nodes",
                    "2",
                    "--gpus",
                    "4",
                ]
            )
            == 0
        )
        assert "GB/s" in capsys.readouterr().out

    def test_run_nccl_backend(self, capsys):
        assert (
            main(
                [
                    "run",
                    "ring-allreduce",
                    "--backend",
                    "nccl",
                    "--buffer-mb",
                    "16",
                    "--mbs",
                    "2",
                    "--nodes",
                    "2",
                    "--gpus",
                    "4",
                ]
            )
            == 0
        )

    def test_unknown_backend(self):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["run", "hm-allreduce", "--backend", "hccl"])

    def test_compare_table(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "hm-allgather",
                    "--buffer-mb",
                    "16",
                    "--mbs",
                    "2",
                    "--nodes",
                    "2",
                    "--gpus",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "NCCL" in out and "ResCCL" in out and "vs NCCL" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_v100_profile(self, capsys):
        assert (
            main(
                [
                    "run",
                    "hm-allgather",
                    "--profile",
                    "V100",
                    "--buffer-mb",
                    "16",
                    "--mbs",
                    "2",
                    "--nodes",
                    "2",
                    "--gpus",
                    "4",
                ]
            )
            == 0
        )


class TestExportAndXml:
    def test_export_rescclang(self, tmp_path, capsys):
        out = tmp_path / "ring.rescclang"
        assert (
            main(
                ["export", "ring-allgather", str(out), "--nodes", "1",
                 "--gpus", "4"]
            )
            == 0
        )
        assert "ResCCLang" in capsys.readouterr().out
        assert out.read_text().startswith("def ResCCLAlgo")

    def test_export_msccl_xml(self, tmp_path, capsys):
        out = tmp_path / "ring.xml"
        assert (
            main(
                ["export", "ring-allreduce", str(out), "--nodes", "1",
                 "--gpus", "4"]
            )
            == 0
        )
        assert "MSCCL-XML" in capsys.readouterr().out
        assert "<algo" in out.read_text()

    def test_xml_round_trips_through_cli(self, tmp_path, capsys):
        out = tmp_path / "hm.xml"
        assert (
            main(
                ["export", "hm-allreduce", str(out), "--nodes", "2",
                 "--gpus", "4"]
            )
            == 0
        )
        assert (
            main(["verify", str(out), "--nodes", "2", "--gpus", "4"]) == 0
        )
        assert "semantics: ok" in capsys.readouterr().out


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table3" in out

    def test_requires_name(self):
        with pytest.raises(SystemExit, match="experiment id"):
            main(["experiment"])

    def test_runs_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "TB count" in capsys.readouterr().out or True


class TestTraceCommand:
    def test_ascii_and_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "hm-allreduce",
                    "--nodes", "2", "--gpus", "4",
                    "--buffer-mb", "16",
                    "--mbs", "2",
                    "--width", "40",
                    "--output", str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "timeline" in printed
        assert out.exists()

    def test_ranks_filter_applies_to_both_outputs(self, tmp_path, capsys):
        import json

        from repro.analysis import validate_chrome_trace
        from repro.analysis.timeline import FAULT_PID

        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "hm-allreduce",
                    "--nodes", "2", "--gpus", "4",
                    "--buffer-mb", "16",
                    "--mbs", "2",
                    "--ranks", "1,2",
                    "--width", "40",
                    "--output", str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "r1 " in printed and "r0 " not in printed
        trace = json.loads(out.read_text())
        validate_chrome_trace(trace)
        lane_pids = {
            e["pid"] for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] < FAULT_PID
        }
        assert lane_pids == {1, 2}

    def test_inject_includes_fault_events(self, tmp_path, capsys):
        import json

        from repro.analysis.timeline import FAULT_PID

        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "ring-allreduce",
                    "--nodes", "1", "--gpus", "4",
                    "--buffer-mb", "16",
                    "--mbs", "2",
                    "--inject", "link-flap",
                    "--seed", "0",
                    "--output", str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "fault/recovery events" in printed
        trace = json.loads(out.read_text())
        fault_kinds = {
            e["name"] for e in trace["traceEvents"]
            if e.get("pid") == FAULT_PID and e["ph"] == "X"
        }
        assert any(k.startswith("fault:") for k in fault_kinds)

    def test_bad_ranks_spec(self):
        with pytest.raises(SystemExit, match="--ranks"):
            main(
                [
                    "trace", "ring-allreduce",
                    "--nodes", "1", "--gpus", "4",
                    "--buffer-mb", "16", "--mbs", "2",
                    "--ranks", "zero,one",
                ]
            )


class TestProfileCommand:
    def test_span_tree_attribution_and_exports(self, tmp_path, capsys):
        import json

        from repro.analysis import validate_chrome_trace
        from repro.analysis.timeline import SPAN_PID

        out = tmp_path / "profile.json"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "profile",
                    "ring-allreduce",
                    "--nodes", "1", "--gpus", "4",
                    "--buffer-mb", "16",
                    "--mbs", "2",
                    "--output", str(out),
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        # The span tree covers the pipeline end to end.
        for phase in ("plan", "parsing", "analysis", "scheduling",
                      "kernelgen", "simulate"):
            assert phase in printed
        assert "critical path" in printed
        assert "metrics:" in printed
        trace = json.loads(out.read_text())
        validate_chrome_trace(trace)
        phs = {e["ph"] for e in trace["traceEvents"]}
        assert {"X", "C", "M"} <= phs
        span_names = {
            e["name"] for e in trace["traceEvents"]
            if e.get("pid") == SPAN_PID and e["ph"] == "X"
        }
        assert "simulate" in span_names
        exported = json.loads(metrics.read_text())
        assert "sim_completion_time_us" in exported

    def test_attribution_sums_within_one_percent(self, capsys):
        assert (
            main(
                [
                    "profile",
                    "hm-allreduce",
                    "--nodes", "2", "--gpus", "4",
                    "--buffer-mb", "16",
                    "--mbs", "2",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        import re

        match = re.search(
            r"critical path — .*: ([\d.]+) us", printed
        )
        assert match, printed
        completion = float(match.group(1))
        bucket_times = [
            float(m.group(1))
            for m in re.finditer(
                r"^\s+(?:send|recv|overhead|wait:data|wait:sync|idle)"
                r"\s+([\d.]+)\s+[\d.]+%$",
                printed,
                re.MULTILINE,
            )
        ]
        assert bucket_times, printed
        assert sum(bucket_times) == pytest.approx(completion, rel=0.01)

    def test_prometheus_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "profile",
                    "ring-allreduce",
                    "--backend", "nccl",
                    "--nodes", "1", "--gpus", "4",
                    "--buffer-mb", "16",
                    "--mbs", "2",
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        text = metrics.read_text()
        assert "# TYPE sim_completion_time_us gauge" in text

    def test_profile_with_faults(self, capsys):
        assert (
            main(
                [
                    "profile",
                    "ring-allreduce",
                    "--nodes", "1", "--gpus", "4",
                    "--buffer-mb", "16",
                    "--mbs", "2",
                    "--inject", "link-flap",
                    "--seed", "0",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "faults:" in printed
        assert "critical path" in printed


class TestFaultInjection:
    RING8 = "examples/algorithms/ring_allreduce_8.rescclang"

    def test_inject_flap_completes_with_recovery_events(self, capsys):
        assert (
            main(
                [
                    "run", self.RING8,
                    "--inject", "link-flap",
                    "--seed", "0",
                    "--buffer-mb", "16",
                    "--mbs", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "recover:resume" in out
        assert "goodput vs clean run" in out

    def test_inject_kill_falls_back_to_ring(self, capsys):
        assert (
            main(
                [
                    "run", self.RING8,
                    "--inject", "link-kill",
                    "--seed", "0",
                    "--buffer-mb", "16",
                    "--mbs", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 fallback(s)" in out
        assert "ring-fallback" in out

    def test_inject_kill_without_recovery_exits_2(self, capsys):
        assert (
            main(
                [
                    "run", self.RING8,
                    "--inject", "link-kill",
                    "--seed", "0",
                    "--recovery", "none",
                    "--buffer-mb", "16",
                    "--mbs", "4",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "simulation deadlocked" in err
        assert "never finished" in err
        assert "down edges" in err

    def test_default_cluster_auto_fits_dsl_world_size(self, capsys):
        # ring_allreduce_8 declares 8 ranks; the default 2x8 cluster is
        # refitted rather than failing validation.
        assert (
            main(["run", self.RING8, "--buffer-mb", "16", "--mbs", "4"]) == 0
        )
        assert "GB/s" in capsys.readouterr().out

    def test_explicit_cluster_shape_still_validates(self):
        with pytest.raises(Exception, match="nRanks"):
            main(
                [
                    "run", self.RING8,
                    "--nodes", "2", "--gpus", "6",
                    "--buffer-mb", "16",
                ]
            )

    def test_experiment_seed_is_plumbed(self, capsys):
        import repro.experiments as experiments

        seen = {}

        def fake_run(seed=0):
            seen["seed"] = seed
            from repro.experiments.base import ExperimentResult
            return ExperimentResult(name="resilience", title="t", headers=[])

        original = experiments.REGISTRY["resilience"]
        experiments.REGISTRY["resilience"] = fake_run
        try:
            assert main(["experiment", "resilience", "--seed", "42"]) == 0
        finally:
            experiments.REGISTRY["resilience"] = original
        assert seen["seed"] == 42

"""Tests for the ResCCLang textual parser (Figure 14 grammar)."""

import pytest

from repro.ir.task import Collective, CommType
from repro.lang import (
    ResCCLangSyntaxError,
    parse_module,
    parse_program,
)

RING_AG_SOURCE = """\
# Figure 5(a): 4-rank ring AllGather.
def ResCCLAlgo(nRanks=4, AlgoName="ring", OpType="Allgather"):
    N = 4
    for r in range(0, N):
        offset = r
        peer = (r + 1) % N
        for step in range(0, N - 1):
            transfer(r, peer, step, (offset - step) % N, recv)
"""


class TestHeader:
    def test_full_header(self):
        source = (
            'def ResCCLAlgo(nRanks=32, nChannels=4, nWarps=16, AlgoName="HM", '
            'OpType="Allreduce", GPUPerNode=8, NICPerNode=8):\n'
            "    transfer(0, 1, 0, 0, rrc)\n"
        )
        module = parse_module(source)
        header = module.header
        assert header.nranks == 32
        assert header.nchannels == 4
        assert header.nwarps == 16
        assert header.algo_name == "HM"
        assert header.collective is Collective.ALLREDUCE
        assert header.gpus_per_node == 8
        assert header.nics_per_node == 8

    def test_header_defaults(self):
        module = parse_module(
            "def ResCCLAlgo(nRanks=4):\n    transfer(0, 1, 0, 0, recv)\n"
        )
        assert module.header.nchannels == 4
        assert module.header.nwarps == 16
        assert module.header.collective is Collective.ALLGATHER

    def test_missing_nranks_rejected(self):
        with pytest.raises(ResCCLangSyntaxError, match="missing nRanks"):
            parse_module('def ResCCLAlgo(AlgoName="x"):\n    y = 1\n')

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ResCCLangSyntaxError, match="unknown parameter"):
            parse_module("def ResCCLAlgo(nRanks=4, bogus=1):\n    y = 1\n")

    def test_unquoted_algo_name_rejected(self):
        with pytest.raises(ResCCLangSyntaxError, match="quoted string"):
            parse_module("def ResCCLAlgo(nRanks=4, AlgoName=ring):\n    y = 1\n")

    def test_wrapped_header_continuation(self):
        source = (
            'def ResCCLAlgo(nRanks=8, AlgoName="wrapped",\n'
            '               OpType="Allgather"):\n'
            "    transfer(0, 1, 0, 0, recv)\n"
        )
        module = parse_module(source)
        assert module.header.algo_name == "wrapped"


class TestStatements:
    def test_ring_allgather_elaborates(self):
        program = parse_program(RING_AG_SOURCE)
        assert len(program.transfers) == 4 * 3
        first = program.transfers[0]
        assert (first.src, first.dst, first.step) == (0, 1, 0)
        assert first.op is CommType.RECV

    def test_matches_builder_ring(self):
        from repro.algorithms import ring_allgather

        parsed = parse_program(RING_AG_SOURCE)
        built = ring_allgather(4)
        assert set(parsed.transfers) == set(built.transfers)

    def test_quoted_comm_type(self):
        program = parse_program(
            'def ResCCLAlgo(nRanks=4):\n    transfer(0, 1, 0, 0, "rrc")\n'
        )
        assert program.transfers[0].op is CommType.RRC

    def test_assignment_and_arithmetic(self):
        program = parse_program(
            "def ResCCLAlgo(nRanks=8):\n"
            "    x = 2 + 3 * 2\n"  # 8 with precedence
            "    transfer(1, x % 8, 0, x / 3, recv)\n"
        )
        t = program.transfers[0]
        assert t.dst == 0  # 8 % 8
        assert t.chunk == 2  # 8 // 3

    def test_parenthesized_expression(self):
        program = parse_program(
            "def ResCCLAlgo(nRanks=8):\n"
            "    transfer(0, (1 + 2) * 2, 0, 0, recv)\n"
        )
        assert program.transfers[0].dst == 6

    def test_header_parameters_visible_in_body(self):
        program = parse_program(
            "def ResCCLAlgo(nRanks=6):\n"
            "    transfer(0, nRanks - 1, 0, 0, recv)\n"
        )
        assert program.transfers[0].dst == 5

    def test_range_single_argument(self):
        program = parse_program(
            "def ResCCLAlgo(nRanks=4):\n"
            "    for i in range(3):\n"
            "        transfer(i, i + 1, i, 0, recv)\n"
        )
        assert len(program.transfers) == 3

    def test_range_three_arguments(self):
        program = parse_program(
            "def ResCCLAlgo(nRanks=8):\n"
            "    for i in range(0, 6, 2):\n"
            "        transfer(i, i + 1, 0, i, recv)\n"
        )
        assert [t.src for t in program.transfers] == [0, 2, 4]

    def test_nested_loops(self):
        program = parse_program(
            "def ResCCLAlgo(nRanks=4):\n"
            "    for i in range(0, 2):\n"
            "        for j in range(0, 2):\n"
            "            transfer(i, i + j + 1, i, j, recv)\n"
        )
        assert len(program.transfers) == 4

    def test_comments_and_blank_lines_ignored(self):
        program = parse_program(
            "# leading comment\n"
            "def ResCCLAlgo(nRanks=4):\n"
            "\n"
            "    # inner comment\n"
            "    transfer(0, 1, 0, 0, recv)  # trailing\n"
        )
        assert len(program.transfers) == 1


class TestErrors:
    def test_empty_program(self):
        with pytest.raises(ResCCLangSyntaxError, match="empty program"):
            parse_module("   \n# just a comment\n")

    def test_empty_body(self):
        with pytest.raises(ResCCLangSyntaxError, match="body is empty"):
            parse_module("def ResCCLAlgo(nRanks=4):\n")

    def test_bad_character(self):
        with pytest.raises(ResCCLangSyntaxError, match="unexpected character"):
            parse_module("def ResCCLAlgo(nRanks=4):\n    x = 1 @ 2\n")

    def test_error_carries_line_number(self):
        try:
            parse_module("def ResCCLAlgo(nRanks=4):\n    x = \n")
        except ResCCLangSyntaxError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected a syntax error")

    def test_missing_indent(self):
        with pytest.raises(ResCCLangSyntaxError, match="indented block"):
            parse_module(
                "def ResCCLAlgo(nRanks=4):\n"
                "    for i in range(2):\n"
                "    transfer(0, 1, 0, 0, recv)\n"
            )

    def test_bad_comm_type(self):
        with pytest.raises(ValueError, match="commType"):
            parse_module(
                "def ResCCLAlgo(nRanks=4):\n    transfer(0, 1, 0, 0, push)\n"
            )

    def test_too_many_range_args(self):
        with pytest.raises(ResCCLangSyntaxError, match="at most 3"):
            parse_module(
                "def ResCCLAlgo(nRanks=4):\n"
                "    for i in range(0, 1, 2, 3):\n"
                "        transfer(0, 1, 0, 0, recv)\n"
            )

    def test_trailing_tokens(self):
        with pytest.raises(ResCCLangSyntaxError, match="trailing"):
            parse_module("def ResCCLAlgo(nRanks=4):\n    x = 1 2\n")

    def test_statement_outside_body(self):
        with pytest.raises(ResCCLangSyntaxError, match="outside"):
            parse_module(
                "def ResCCLAlgo(nRanks=4):\n    x = 1\ny = 2\n"
            )


class TestRoundTrip:
    def test_to_source_round_trips(self):
        from repro.algorithms import hm_allreduce

        program = hm_allreduce(2, 4)
        reparsed = parse_program(program.to_source())
        assert reparsed.header.nranks == program.header.nranks
        assert reparsed.header.collective is program.header.collective
        assert reparsed.transfers == program.transfers

    def test_figure16_program_parses(self):
        """The Appendix B example (Figure 16), generalized shape 4x8."""
        source = """\
def ResCCLAlgo(nRanks=32, nChannels=4, nWarps=16, AlgoName="HM", OpType="Allreduce", GPUPerNode=8, NICPerNode=8):
    nNodes = 4
    nGpusperNode = 8
    nChunks = nNodes * nGpusperNode
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = baseStep * (nGpusperNode - 1) + offset
                    transfer(srcRank, dstRank, step, (dstRank + baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + baseStep
                transfer(srcRank, dstRank, step, (srcRank + nChunks - baseStep * nGpusperNode) % nChunks, rrc)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes - 1):
                srcRank = nGpusperNode * n + r
                dstRank = (srcRank + nGpusperNode) % nChunks
                step = nNodes * (nGpusperNode - 1) + nNodes - 1 + baseStep
                chunkId = (srcRank + nChunks - (baseStep + nNodes - 1) * nGpusperNode) % nChunks
                transfer(srcRank, dstRank, step, chunkId, recv)
    for n in range(0, nNodes):
        for r in range(0, nGpusperNode):
            for baseStep in range(0, nNodes):
                for offset in range(0, nGpusperNode - 1):
                    srcRank = nGpusperNode * n + r
                    dstRank = (r + offset + 1) % nGpusperNode + nGpusperNode * n
                    step = nNodes * (nGpusperNode - 1) + 2 * nNodes - 2 + baseStep
                    transfer(srcRank, dstRank, step, (srcRank + baseStep * nGpusperNode) % nChunks, recv)
"""
        from repro.algorithms import hm_allreduce

        program = parse_program(source)
        built = hm_allreduce(4, 8)
        assert set(program.transfers) == set(built.transfers)

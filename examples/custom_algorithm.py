#!/usr/bin/env python3
"""Author a collective algorithm in textual ResCCLang, compile, inspect.

Shows the full developer workflow of section 4.2:

1. write the algorithm as ResCCLang source (here: a 2-server x 4-GPU
   hierarchical AllGather in the Figure 16 style);
2. parse and statically validate it;
3. verify its collective semantics symbolically;
4. compile it with the ResCCL compiler (parsing / analysis / scheduling /
   lowering phases);
5. inspect the scheduled pipeline, the TB allocation, and the generated
   lightweight kernel for rank 0;
6. execute it and report bandwidth.
"""

from repro import MB, ResCCLBackend, multi_node, simulate, validate_program
from repro.core import ResCCLCompiler
from repro.lang import parse_program
from repro.runtime import verify_collective

# A hand-written hierarchical AllGather for 2 nodes x 4 GPUs: intra-node
# full mesh at step 0, inter-node ring among ring-aligned peers, then a
# local re-broadcast of the remote chunks.
SOURCE = """\
def ResCCLAlgo(nRanks=8, nChannels=4, nWarps=16, AlgoName="hm-ag-2x4",
               OpType="Allgather", GPUPerNode=4, NICPerNode=2):
    nNodes = 2
    G = 4
    N = nNodes * G
    # Broadcast 1a: intra-node full mesh of each rank's own chunk.
    for n in range(0, nNodes):
        for r in range(0, G):
            src = n * G + r
            for offset in range(0, G - 1):
                dst = n * G + (r + offset + 1) % G
                transfer(src, dst, 0, src, recv)
    # Broadcast 1b: inter-node ring over ring-aligned peers.
    for src in range(0, N):
        for b in range(0, nNodes - 1):
            transfer(src, (src + G) % N, b, (src - b * G + N) % N, recv)
    # Broadcast 2: re-broadcast remote chunks to local peers.
    for n in range(0, nNodes):
        for r in range(0, G):
            src = n * G + r
            for b in range(0, nNodes - 1):
                chunk = (src - (b + 1) * G + N * 2) % N
                for offset in range(0, G - 1):
                    dst = n * G + (r + offset + 1) % G
                    transfer(src, dst, nNodes - 1 + b, chunk, recv)
"""


def main() -> None:
    # 1-2. Parse and validate.
    program = parse_program(SOURCE)
    cluster = multi_node(nodes=2, gpus_per_node=4)
    validate_program(program, cluster).raise_if_failed()
    print(f"Parsed {program!r}")

    # 3. Symbolic correctness check.
    verify_collective(program).raise_if_failed()
    print("Collective semantics verified: every rank gathers every chunk.\n")

    # 4. Compile through the four offline phases.
    compiled = ResCCLCompiler().compile(program, cluster)
    print("Offline compiler phases:")
    for phase, micros in compiled.phase_times_us.items():
        print(f"  {phase:<11} {micros / 1000.0:8.2f} ms")

    # 5a. Scheduled pipeline.
    pipeline = compiled.pipeline
    print(
        f"\nHPDS pipeline: {pipeline.task_count} tasks in "
        f"{pipeline.depth} sub-pipelines"
    )
    for sp in pipeline.sub_pipelines[:4]:
        links = [compiled.dag.task(t).link for t in sp.task_ids]
        print(f"  sub-pipeline {sp.index}: {len(sp.task_ids)} tasks on "
              f"{len(set(links))} distinct links")

    # 5b. TB allocation.
    rank0 = [a for a in compiled.assignments if a.rank == 0]
    print(f"\nRank 0 thread blocks ({len(rank0)}):")
    for tb in rank0:
        print(f"  window {tb.window}: {tb.label}")

    # 5c. Generated kernel listing.
    print("\nGenerated kernel for rank 0 (first 24 lines):")
    for line in compiled.kernel_source(0, n_microbatches=8).splitlines()[:24]:
        print(f"  {line}")

    # 6. Execute.
    backend = ResCCLBackend()
    report = simulate(backend.plan(cluster, program, 128 * MB))
    print(f"\nExecution: {report.summary()}")


if __name__ == "__main__":
    main()

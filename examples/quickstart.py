#!/usr/bin/env python3
"""Quickstart: run one collective on all three backends and compare.

Builds the paper's 2-server x 8-GPU A100 testbed, takes the expert
hierarchical-mesh AllReduce (Appendix A), and executes it with:

* NCCL  — its own ring algorithm, algorithm-level execution;
* MSCCL — the HM algorithm, stage-level interpreted execution;
* ResCCL — the HM algorithm, HPDS task-level scheduling with generated
  kernels and state-based TB allocation.

Usage: python examples/quickstart.py [buffer_mb]
"""

import sys

from repro import MB, MSCCLBackend, NCCLBackend, ResCCLBackend, multi_node, simulate
from repro.algorithms import hm_allreduce
from repro.analysis import format_table
from repro.ir.task import Collective


def main() -> None:
    buffer_mb = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    buffer_bytes = buffer_mb * MB

    cluster = multi_node(nodes=2, gpus_per_node=8)
    algorithm = hm_allreduce(2, 8)
    print(f"Cluster: {cluster}")
    print(f"Algorithm: {algorithm}")
    print(f"Buffer: {buffer_mb} MB per rank\n")

    reports = {}
    nccl = NCCLBackend()
    reports["NCCL"] = simulate(
        nccl.plan(cluster, Collective.ALLREDUCE, buffer_bytes)
    )
    msccl = MSCCLBackend()
    reports["MSCCL"] = simulate(msccl.plan(cluster, algorithm, buffer_bytes))
    resccl = ResCCLBackend()
    reports["ResCCL"] = simulate(resccl.plan(cluster, algorithm, buffer_bytes))

    baseline_bw = reports["NCCL"].algo_bandwidth
    rows = []
    for name, report in reports.items():
        rows.append(
            [
                name,
                f"{report.algo_bandwidth_gbps:.1f}",
                f"{report.completion_time_us / 1000.0:.2f}",
                f"{report.algo_bandwidth / baseline_bw:.2f}x",
                str(report.max_tbs_per_rank()),
                f"{report.link_utilization():.1%}",
                f"{report.avg_idle_fraction():.1%}",
            ]
        )
    print(
        format_table(
            [
                "backend",
                "algbw GB/s",
                "time ms",
                "vs NCCL",
                "TBs/rank",
                "link util",
                "TB idle",
            ],
            rows,
        )
    )

    speedup = reports["ResCCL"].algo_bandwidth / reports["MSCCL"].algo_bandwidth
    print(
        f"\nResCCL runs the same algorithm {speedup:.2f}x faster than MSCCL "
        f"while using {reports['ResCCL'].max_tbs_per_rank()} instead of "
        f"{reports['MSCCL'].max_tbs_per_rank()} TBs per GPU."
    )


if __name__ == "__main__":
    main()

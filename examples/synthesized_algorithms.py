#!/usr/bin/env python3
"""Execute synthesizer-generated algorithms on MSCCL vs ResCCL.

Reproduces the section 5.2 "synthesized algorithms" workflow: the TACCL
and TECCL stand-ins generate AllGather/AllReduce schedules for the
cluster; both backends then execute the *same* algorithm, isolating the
backend's contribution — exactly the Figure 7 experiment.

Also reports the resource side (Table 3): TB counts and idle ratios.
"""

from repro import MB, MSCCLBackend, ResCCLBackend, multi_node, simulate
from repro.analysis import format_table
from repro.ir.task import Collective
from repro.synth import TACCLSynthesizer, TECCLSynthesizer


def main() -> None:
    cluster = multi_node(nodes=2, gpus_per_node=8)
    buffer_bytes = 256 * MB
    # "Default/4": MSCCL runs synthesized algorithms with 4 channel
    # instances (Table 2); ResCCL needs no manual channel tuning.
    msccl = MSCCLBackend(instances=4)
    resccl = ResCCLBackend()

    rows = []
    for synthesizer in (TACCLSynthesizer(), TECCLSynthesizer()):
        for collective in (Collective.ALLGATHER, Collective.ALLREDUCE):
            program = synthesizer.synthesize(cluster, collective)
            msccl_report = simulate(msccl.plan(cluster, program, buffer_bytes))
            resccl_report = simulate(
                resccl.plan(cluster, program, buffer_bytes)
            )
            speedup = (
                resccl_report.algo_bandwidth / msccl_report.algo_bandwidth
            )
            tb_saving = 1.0 - (
                resccl_report.tb_count() / msccl_report.tb_count()
            )
            rows.append(
                [
                    program.name,
                    f"{msccl_report.algo_bandwidth_gbps:.1f}",
                    f"{resccl_report.algo_bandwidth_gbps:.1f}",
                    f"{speedup:.2f}x",
                    f"{msccl_report.max_tbs_per_rank()}",
                    f"{resccl_report.max_tbs_per_rank()}",
                    f"{tb_saving:.0%}",
                    f"{msccl_report.avg_idle_fraction():.0%}",
                    f"{resccl_report.avg_idle_fraction():.0%}",
                ]
            )

    print(f"Cluster: {cluster}; buffer 256 MB; MSCCL instances=4\n")
    print(
        format_table(
            [
                "algorithm",
                "MSCCL GB/s",
                "ResCCL GB/s",
                "speedup",
                "MSCCL TB/rank",
                "ResCCL TB/rank",
                "TB saving",
                "MSCCL idle",
                "ResCCL idle",
            ],
            rows,
        )
    )
    print(
        "\nResCCL executes the identical synthesized schedules faster with "
        "a fraction of the thread blocks — the paper's headline resource "
        "result (up to 77.8% fewer TBs)."
    )


if __name__ == "__main__":
    main()

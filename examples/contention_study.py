#!/usr/bin/env python3
"""Congestion study: conflict-free allocation as congestion mitigation.

Section 4.4 of the paper argues that because link-level conflicts
manifest as transmission slowdowns — fundamentally a form of link
congestion — ResCCL's state-based allocation inherently mitigates
congestion.  This example makes that visible two ways:

1. sweep the fabric's contention penalty (Equation 1's gamma): MSCCL's
   many-channel execution collapses, ResCCL barely moves;
2. inject an external congestor job streaming through every NIC and
   compare the surviving bandwidth.
"""

from repro import MB, MSCCLBackend, ResCCLBackend, multi_node, simulate
from repro.algorithms import hm_allreduce
from repro.analysis import format_table
from repro.runtime.plan import SimConfig


def congestors_on_all_nics(cluster, rate):
    flows = []
    for node in range(cluster.nodes):
        for nic in range(cluster.nics_per_node):
            flows.append(((f"nic:out:{node}:{nic}",), rate))
            flows.append(((f"nic:in:{node}:{nic}",), rate))
    return flows


def main() -> None:
    cluster = multi_node(2, 8)
    program = hm_allreduce(2, 8)
    buffer_bytes = 128 * MB
    half_line_rate = cluster.profile.nic.bandwidth / 2

    print("HM AllReduce, 2 servers x 8 GPUs, 128 MB buffer")
    print("congestor: another job pushing half line rate through every NIC\n")

    rows = []
    for gamma in (0.0, 0.03, 0.1, 0.3):
        row = [f"{gamma:.2f}"]
        for name, backend in (
            (
                "MSCCL",
                MSCCLBackend(
                    instances=4,
                    max_microbatches=16,
                    config=SimConfig(gamma=gamma, fifo_depth=1),
                ),
            ),
            (
                "ResCCL",
                ResCCLBackend(
                    max_microbatches=16, config=SimConfig(gamma=gamma)
                ),
            ),
        ):
            clean = simulate(backend.plan(cluster, program, buffer_bytes))
            loaded = simulate(
                backend.plan(cluster, program, buffer_bytes),
                background_traffic=congestors_on_all_nics(
                    cluster, half_line_rate
                ),
            )
            row += [
                f"{clean.algo_bandwidth_gbps:.1f}",
                f"{loaded.algo_bandwidth_gbps:.1f}",
            ]
        rows.append(row)

    print(
        format_table(
            ["gamma", "MSCCL clean", "MSCCL loaded", "ResCCL clean",
             "ResCCL loaded"],
            rows,
        )
    )
    print(
        "\nReading the table: gamma is how brutally the fabric punishes "
        "concurrent flows on one link.  MSCCL's per-stage channels and "
        "instances put many flows on every link, so its clean bandwidth "
        "collapses as gamma grows; ResCCL schedules at most one flow per "
        "link and barely notices.  Under the external congestor, ResCCL "
        "retains the highest absolute bandwidth on any fabric with a "
        "real conflict penalty."
    )


if __name__ == "__main__":
    main()

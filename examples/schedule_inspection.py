#!/usr/bin/env python3
"""Inspect how ResCCL schedules an algorithm: DAG, pipeline, TB timeline.

A guided tour of the compiler internals on the ring AllGather of the
paper's Figure 5: the dependency DAG, the HPDS sub-pipelines, the static
timeline analysis behind TB allocation, and an ASCII activity chart of
each thread block's window — plus the HPDS vs round-robin comparison.
"""

from repro import multi_node
from repro.algorithms import hm_allreduce, ring_allgather
from repro.core import (
    ResCCLCompiler,
    build_endpoint_groups,
    hpds_schedule,
    rr_schedule,
    timeline_slots,
)
from repro.ir.dag import build_dag
from repro.topology import single_node


def show_figure5_example() -> None:
    """The paper's running example: 4-rank ring AllGather."""
    print("=== Figure 5 example: ring AllGather, 4 ranks ===\n")
    cluster = single_node(4)
    program = ring_allgather(4)
    dag = build_dag(program.transfers, cluster)

    print(f"Dependency DAG: {len(dag)} tasks, {dag.edge_count} data edges, "
          f"critical path {dag.critical_path_length()}")
    for task in dag.tasks:
        deps = sorted(dag.preds[task.task_id])
        print(f"  v{task.task_id}: chunk {task.chunk} r{task.src}->r{task.dst} "
              f"step {task.step}" + (f"  needs {deps}" if deps else ""))

    pipeline = hpds_schedule(dag)
    print(f"\nHPDS schedule ({pipeline.depth} sub-pipelines):")
    for sp in pipeline.sub_pipelines:
        tasks = ", ".join(
            f"v{t}(c{dag.task(t).chunk})" for t in sp.task_ids
        )
        print(f"  sub-pipeline {sp.index}: {tasks}")


def show_tb_timeline() -> None:
    """ASCII activity windows of rank 0's TBs for HM AllReduce 2x4."""
    print("\n=== TB timeline: HM AllReduce, 2 servers x 4 GPUs ===\n")
    cluster = multi_node(2, 4)
    compiled = ResCCLCompiler().compile(hm_allreduce(2, 4), cluster)
    slots = timeline_slots(compiled.dag, compiled.pipeline)
    horizon = max(slots.values()) + 1
    print(f"timeline: {horizon} slots   (#=active window)")
    for tb in (a for a in compiled.assignments if a.rank == 0):
        lo, hi = tb.window
        bar = "".join(
            "#" if lo <= slot <= hi else "." for slot in range(horizon)
        )
        print(f"  rank0 [{bar}] {tb.label}")


def show_scheduler_comparison() -> None:
    """HPDS vs round-robin pipeline shape (the Figure 10b ablation)."""
    print("\n=== HPDS vs round-robin (Figure 10b) ===\n")
    cluster = multi_node(2, 4)
    dag = build_dag(hm_allreduce(2, 4).transfers, cluster)
    for schedule in (hpds_schedule, rr_schedule):
        pipeline = schedule(dag)
        sizes = [len(sp) for sp in pipeline.sub_pipelines]
        print(f"  {pipeline.scheduler:<5} depth={pipeline.depth:<3} "
              f"sub-pipeline sizes={sizes}")


def main() -> None:
    show_figure5_example()
    show_tb_timeline()
    show_scheduler_comparison()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""End-to-end LLM training throughput with swappable CCL backends.

The Figure 13 experiment: train GPT-3 (tensor parallel) and T5 (data
parallel) under a Megatron-style iteration model where every collective
is executed by the chosen backend in the discrete-event runtime.
"""

from repro import MSCCLBackend, NCCLBackend, ResCCLBackend, multi_node
from repro.analysis import format_table
from repro.training import (
    GPT3_MODELS,
    MegatronSimulator,
    ParallelConfig,
    T5_MODELS,
)


def run_suite(title, cluster, jobs):
    print(f"\n=== {title} ===")
    backends = {
        "NCCL": NCCLBackend(max_microbatches=8),
        "MSCCL": MSCCLBackend(max_microbatches=8),
        "ResCCL": ResCCLBackend(max_microbatches=8),
    }
    rows = []
    for model, parallel in jobs:
        throughputs = {}
        comm_fraction = 0.0
        for name, backend in backends.items():
            simulator = MegatronSimulator(cluster, backend)
            throughputs[name] = simulator.throughput(model, parallel)
            if name == "NCCL":
                comm_fraction = simulator.iteration(
                    model, parallel
                ).comm_fraction
        rows.append(
            [
                model.name,
                f"tp={parallel.tp} dp={parallel.dp}",
                f"{throughputs['NCCL']:.1f}",
                f"{throughputs['MSCCL']:.1f}",
                f"{throughputs['ResCCL']:.1f}",
                f"{throughputs['ResCCL'] / throughputs['NCCL'] - 1:+.1%}",
                f"{throughputs['ResCCL'] / throughputs['MSCCL'] - 1:+.1%}",
                f"{comm_fraction:.0%}",
            ]
        )
    print(
        format_table(
            [
                "model",
                "layout",
                "NCCL sps",
                "MSCCL sps",
                "ResCCL sps",
                "vs NCCL",
                "vs MSCCL",
                "comm frac",
            ],
            rows,
        )
    )


def main() -> None:
    # Models under 13B params: 2 servers (16 GPUs), batch 16 (section 5.5).
    cluster16 = multi_node(2, 8)
    run_suite(
        "T5 (data parallel, DP=16, 16 GPUs)",
        cluster16,
        [
            (model, ParallelConfig(tp=1, dp=16, batch_size=16))
            for model in T5_MODELS
        ],
    )
    run_suite(
        "GPT-3 small (tensor parallel, TP=8 DP=2, 16 GPUs)",
        cluster16,
        [
            (
                model,
                ParallelConfig(tp=8, dp=2, batch_size=16, microbatch_size=4),
            )
            for model in GPT3_MODELS[:2]
        ],
    )
    # Larger models: 4 servers (32 GPUs), batch 32.
    cluster32 = multi_node(4, 8)
    run_suite(
        "GPT-3 large (tensor parallel, TP=8 DP=4, 32 GPUs)",
        cluster32,
        [
            (
                model,
                ParallelConfig(tp=8, dp=4, batch_size=32, microbatch_size=4),
            )
            for model in GPT3_MODELS[2:]
        ],
    )


if __name__ == "__main__":
    main()

"""Ablation: the transfer chunk size (Table 2's ChunkSize = 1 MB).

The chunk is the unit of a single primitive invocation; the buffer
splits into micro-batches of one chunk per buffer slot.  Large chunks
starve task-level pipelining of micro-batches (the paper's own
explanation for its small-buffer behaviour: "small messages yield fewer
micro-batches, reducing scheduling opportunities"); the 1 MB default
sits on the flat part of the curve.
"""

from conftest import once

from repro.experiments import ablations


def test_ablation_chunk_size(once):
    result = once(ablations.run_chunk_size)
    print("\n" + result.render())

    results = {chunk: gbps for chunk, (_, gbps) in result.data.items()}
    best = max(results.values())
    # The paper's 1 MB default is on the flat part of the curve.
    assert results[1.0] > 0.90 * best
    # Oversized chunks collapse pipelining (single micro-batch).
    assert results[16.0] < 0.60 * results[1.0]
    # Bandwidth declines monotonically beyond the default.
    assert results[1.0] >= results[2.0] >= results[4.0] >= results[16.0]

"""Shared machinery for the evaluation benchmarks.

Every benchmark regenerates one table or figure of the paper by calling
its experiment runner from :mod:`repro.experiments`, printing the same
rows or series the paper reports, and asserting the *shape* of the
result — who wins, by roughly what factor, where crossovers fall.
Absolute numbers are not expected to match the authors' testbed
(see DESIGN.md).

Each experiment runs exactly once inside ``benchmark.pedantic`` so
pytest-benchmark records the wall-clock of the full experiment.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner

"""Profile baseline: offline pipeline cost and simulated completion time.

Runs the same collective through all three backends under the
observability layer and writes ``BENCH_profile.json`` at the repo root:
per-phase compile wall times (Parsing/Analysis/Scheduling/Lowering for
ResCCL, whole-plan wall time for the baselines) plus each backend's
simulated completion time and bandwidth.  CI and future sessions diff
this file to catch offline-pipeline cost regressions.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import once

from repro import MB
from repro.algorithms import hm_allreduce
from repro.baselines import MSCCLBackend, NCCLBackend
from repro.core import ResCCLBackend, ResCCLCompiler
from repro.ir.task import Collective
from repro.obs import observe
from repro.runtime.simulator import simulate
from repro.topology import Cluster

OUT = Path(__file__).resolve().parent.parent / "BENCH_profile.json"

NODES, GPUS = 2, 4
BUFFER_BYTES = 64 * MB


def _profile_backends() -> dict:
    cluster = Cluster(nodes=NODES, gpus_per_node=GPUS)
    program = hm_allreduce(NODES, GPUS)
    out = {
        "cluster": f"{NODES}x{GPUS}",
        "algorithm": program.name,
        "buffer_mb": int(BUFFER_BYTES // MB),
        "backends": {},
    }
    backends = [
        NCCLBackend(max_microbatches=4),
        MSCCLBackend(max_microbatches=4),
        ResCCLBackend(max_microbatches=4),
    ]
    for backend in backends:
        with observe() as obs:
            if isinstance(backend, NCCLBackend):
                plan = backend.plan(cluster, Collective.ALLREDUCE, BUFFER_BYTES)
            else:
                plan = backend.plan(cluster, program, BUFFER_BYTES)
            report = simulate(plan)
        (plan_span,) = [s for s in obs.tracer.roots if s.name == "plan"]
        out["backends"][backend.name] = {
            "plan_wall_us": plan_span.duration_us,
            "completion_time_us": report.completion_time_us,
            "algbw_gbps": report.algo_bandwidth_gbps,
            "tbs": report.tb_count(),
            "max_tbs_per_rank": report.max_tbs_per_rank(),
        }
    # ResCCL's compiler additionally reports its four serial phases.
    compiled = ResCCLCompiler().compile(program, cluster)
    out["backends"]["ResCCL"]["phase_times_us"] = dict(
        compiled.phase_times_us
    )
    return out


def test_profile_baseline(once):
    result = once(_profile_backends)
    OUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    for name, entry in result["backends"].items():
        print(
            f"  {name:<7} plan {entry['plan_wall_us'] / 1e3:8.2f} ms  "
            f"sim {entry['completion_time_us'] / 1e3:8.2f} ms  "
            f"{entry['algbw_gbps']:6.1f} GB/s  {entry['tbs']} TBs"
        )

    assert set(result["backends"]) == {"NCCL", "MSCCL", "ResCCL"}
    for entry in result["backends"].values():
        assert entry["plan_wall_us"] > 0
        assert entry["completion_time_us"] > 0
    phases = result["backends"]["ResCCL"]["phase_times_us"]
    assert set(phases) == {"parsing", "analysis", "scheduling", "lowering"}
    assert all(t >= 0 for t in phases.values())
    # The paper's resource story: ResCCL needs no more TBs per rank than
    # the channel/stage-heavy baselines.
    tbs = {k: v["max_tbs_per_rank"] for k, v in result["backends"].items()}
    assert tbs["ResCCL"] <= min(tbs["NCCL"], tbs["MSCCL"])

"""Figure 3: runtime interpreter vs direct kernel execution.

Paper finding: the runtime interpreter costs an average of 17.1%
performance versus directly executed (generated) kernels.

Shape to reproduce: interpretation always loses at the paper's
1 MB-chunk operating points, with a double-digit average loss.
"""

from conftest import once

from repro.experiments import fig3


def test_fig3_interpreter_overhead(once):
    result = once(fig3.run)
    print("\n" + result.render())

    losses = [
        1.0 - interp_bw / kernel_bw
        for _, _, kernel_bw, interp_bw in result.data
    ]
    average = sum(losses) / len(losses)
    # Interpretation always loses at these operating points.
    assert all(loss > 0.0 for loss in losses)
    # The average loss is a double-digit percentage, near the paper's.
    assert 0.05 < average < 0.30

"""Ablation: the section 3 execution-granularity taxonomy (Eq. 3-5).

Algorithm-level (T_A) vs stage-level (T_S) vs task-level (T_P) execution
of the identical HM AllReduce, all in interpreter mode so the measured
differences isolate scheduling granularity.  Equation 6 predicts T_P
strictly smallest once micro-batches accumulate.
"""

from conftest import once

from repro.experiments import ablations

SIZES_MB = (16, 64, 256)


def test_ablation_execution_granularity(once):
    result = once(ablations.run_granularity, SIZES_MB)
    print("\n" + result.render())

    results = result.data
    for size, by_level in results.items():
        t_a = by_level["algorithm-level"].completion_time_us
        t_s = by_level["stage-level"].completion_time_us
        t_p = by_level["task-level"].completion_time_us
        # The paper's ordering: task-level beats both other granularities.
        assert t_p < t_s, size
        assert t_p < t_a, size
    # Stage-level buys its speed with extra channels.
    sample = results[SIZES_MB[-1]]
    assert (
        sample["stage-level"].max_tbs_per_rank()
        > sample["task-level"].max_tbs_per_rank()
    )
    # The task-level advantage grows with the micro-batch count (Eq. 6's
    # n -> infinity limit).
    small, large = SIZES_MB[0], SIZES_MB[-1]
    gain_small = (
        results[small]["algorithm-level"].completion_time_us
        / results[small]["task-level"].completion_time_us
    )
    gain_large = (
        results[large]["algorithm-level"].completion_time_us
        / results[large]["task-level"].completion_time_us
    )
    assert gain_large > gain_small * 0.95  # never regresses; usually grows

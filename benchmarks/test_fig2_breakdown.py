"""Figure 2: time-cost breakdown of primitives on the existing runtime.

Paper findings (single-node AllReduce on MSCCL): extra-channel TBs idle
98.2% of the time on the custom algorithm; synchronization blocking
reaches 67.1% on the synthesized one.

Shape to reproduce: some TB idles for the overwhelming majority of its
lifetime, and sync blocking is a large share of TB time.
"""

from conftest import once

from repro.experiments import fig2
from repro.experiments.fig2 import summarize


def test_fig2_primitive_breakdown(once):
    result = once(fig2.run)
    print("\n" + result.render())

    reports = result.data
    custom_worst, _ = summarize(reports["custom"])
    synth_worst, synth_sync = summarize(reports["synthesized"])
    # Some TB spends the overwhelming majority of its lifetime idle.
    assert custom_worst > 0.60
    assert synth_worst > 0.60
    # Synchronization blocking is a large share of synthesized TB time.
    assert synth_sync > 0.30

"""Robustness extension: graceful degradation under injected link faults.

Sweeps fault intensity x recovery policy over the seeded ``link-flap``
scenario (see :mod:`repro.experiments.resilience`).  Because each lower
intensity is a strict prefix of the higher one, goodput must degrade
*gracefully*: monotone non-increasing (small simulator-noise tolerance),
never falling off a >50% cliff in one intensity step, and with mean
recovery latency bounded by a small multiple of the watchdog window —
the detection-to-recovery pipeline, not the fault duration, is what the
runtime controls.
"""

from conftest import once

from repro.experiments import resilience
from repro.runtime.plan import SimConfig

INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)
POLICIES = ("retry", "fallback")
BACKENDS = ("ResCCL", "MSCCL")

#: Water-filling reallocation under a fault subset can shift completion a
#: hair in either direction; monotonicity is asserted up to this slack.
TOLERANCE = 1.05


def test_resilience_recovery(once):
    result = once(
        resilience.run,
        seed=0,
        intensities=INTENSITIES,
        policies=POLICIES,
        backends=BACKENDS,
    )
    print("\n" + result.render())

    window_us = SimConfig().watchdog_window_us
    for backend in BACKENDS:
        for policy in POLICIES:
            cells = result.data[backend][policy]
            goodputs = [cell["goodput"] for cell in cells]

            # Intensity 0 is the clean run; full intensity still completes.
            assert goodputs[0] == 1.0, (backend, policy, goodputs)
            assert goodputs[-1] > 0.0, (backend, policy, goodputs)

            for previous, current in zip(goodputs, goodputs[1:]):
                # Monotone non-increasing (up to reallocation noise)...
                assert current <= previous * TOLERANCE, (
                    backend, policy, goodputs,
                )
                # ...and no >50% cliff in a single intensity step.
                assert current >= 0.5 * previous, (backend, policy, goodputs)

            # Recovery happens within a bounded multiple of the watchdog
            # window whenever anything was actually recovered.
            for cell in cells:
                stats = cell["fault_stats"]
                if stats.recovered:
                    assert (
                        stats.mean_recovery_latency_us < 4.0 * window_us
                    ), (backend, policy, cell["intensity"], stats.summary())

"""Autotuner acceptance benchmark.

Tunes the 2x4 serving matrix (allreduce / allgather / reducescatter at
64 and 128 MB) and records, per cell, the tuned winner against the untuned
ring default, the request-time cost of serving a tuned plan against an
ordinary plan-cache hit, and the search cost of the two-stage
fast-fidelity screen against scoring the whole grid under ``exact``.
Writes ``BENCH_tuning.json`` at the repo root for CI diffing.

Asserted acceptance shape:

* the tuned winner is **strictly better** than the default on every
  cell, and **>= 10% better** on at least one;
* a **table hit adds no search to the hot path** — best-of-N
  ``ResCCLBackend.plan`` latency with the table installed stays within
  2x of a plain plan-cache hit;
* the fast-fidelity screen cuts summed simulation cost **>= 2x**
  against the exact-only reference while picking **identical winners**.

Search costs are compared as summed per-point simulation seconds
(``CellResult.screen_cost_s + exact_cost_s``), which is stable under
worker parallelism, rather than end-to-end wall clock.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from conftest import once

from repro.algorithms import build_algorithm
from repro.core import ResCCLBackend
from repro.tuning.table import configure_tuning
from repro.tuning.tuner import Cell, tune

OUT = Path(__file__).resolve().parent.parent / "BENCH_tuning.json"

#: 64 MB and up keeps every candidate genuinely micro-batched, so the
#: fast screen's collapse has real work on each point — at 32 MB much
#: of the grid plans so few micro-batches that the screen silently pays
#: exact cost (the ``collapse_noops`` column tracks this).
CELLS = tuple(
    Cell(collective=collective, buffer_mb=buffer_mb, nodes=2, gpus=4)
    for collective in ("allreduce", "allgather", "reducescatter")
    for buffer_mb in (64, 128)
)

MIN_CELLS_IMPROVED = 3
MIN_BEST_IMPROVEMENT = 0.10
MAX_HIT_LATENCY_RATIO = 2.0
MIN_SCREEN_COST_REDUCTION = 2.0

LATENCY_ROUNDS = 25


def _best_of(fn, rounds=LATENCY_ROUNDS):
    best = math.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _hit_latencies(table_path):
    """Best-of-N ``plan()`` latency per cell: table hit vs cache hit.

    Both paths are warmed first, so the comparison is pure request-time
    overhead — the tuned path pays the table lookup plus the memoized
    program resolve on top of the same plan-cache hit.
    """
    rows = []
    for cell in CELLS:
        cluster = cell.cluster()
        program = build_algorithm(f"ring-{cell.collective}", cluster)
        tuned_backend = ResCCLBackend(max_microbatches=16)
        plain_backend = ResCCLBackend(max_microbatches=16, use_tuning=False)
        try:
            configure_tuning(str(table_path))
            tuned_backend.plan(cluster, program, cell.buffer_bytes)
            tuned_s = _best_of(
                lambda: tuned_backend.plan(cluster, program, cell.buffer_bytes)
            )
        finally:
            configure_tuning(None)
        plain_backend.plan(cluster, program, cell.buffer_bytes)
        plain_s = _best_of(
            lambda: plain_backend.plan(cluster, program, cell.buffer_bytes)
        )
        rows.append(
            {
                "cell": cell.label(),
                "table_hit_s": tuned_s,
                "plan_cache_hit_s": plain_s,
                "ratio": tuned_s / plain_s,
            }
        )
        print(
            f"  {cell.label():>28}  table hit {tuned_s * 1e6:7.1f}us"
            f"  cache hit {plain_s * 1e6:7.1f}us"
            f"  ratio {tuned_s / plain_s:.2f}x",
            flush=True,
        )
    return rows


def _cell_rows(report):
    rows = []
    for result in report.scored:
        entry = result.entry
        rows.append(
            {
                "cell": result.cell.label(),
                "winner": entry["config"]["algorithm"],
                "winner_config": entry["config"],
                "default": entry["default_algorithm"],
                "tuned_us": entry["tuned_us"],
                "default_us": entry["default_us"],
                "improvement": result.improvement,
                "candidates": result.candidates,
                "screened": result.screened,
                "exact_scored": result.exact_scored,
                "screen_cost_s": result.screen_cost_s,
                "exact_cost_s": result.exact_cost_s,
                "collapse_noops": result.collapse_noops,
                "wall_s": result.wall_s,
            }
        )
        print(
            f"  {result.cell.label():>28}  {entry['config']['algorithm']:<18}"
            f"  tuned {entry['tuned_us']:8.1f}us"
            f"  default {entry['default_us']:8.1f}us"
            f"  {result.improvement:+.1%}",
            flush=True,
        )
    return rows


def test_tuning(once, tmp_path):
    screened_path = tmp_path / "screened.json"
    exact_path = tmp_path / "exact.json"

    print("\nscreened (two-stage) search:", flush=True)
    screened = once(
        tune, CELLS, screened_path, screen_fidelity="fast"
    )
    print("exact-only reference search:", flush=True)
    exact = tune(CELLS, exact_path, screen_fidelity="exact")

    cells = _cell_rows(screened)
    print("serving latency (best of "
          f"{LATENCY_ROUNDS}):", flush=True)
    latency = _hit_latencies(screened_path)

    screened_cost = sum(r.search_cost_s for r in screened.scored)
    exact_cost = sum(r.search_cost_s for r in exact.scored)
    winners = {
        key: entry["config"] for key, entry in screened.table.entries.items()
    }
    reference = {
        key: entry["config"] for key, entry in exact.table.entries.items()
    }
    search = {
        "screened_cost_s": screened_cost,
        "exact_only_cost_s": exact_cost,
        "reduction": exact_cost / screened_cost if screened_cost else None,
        "winners_identical": winners == reference,
    }
    print(
        f"  search cost: screened {screened_cost:.2f}s"
        f"  exact-only {exact_cost:.2f}s"
        f"  reduction {search['reduction']:.2f}x",
        flush=True,
    )

    result = {
        "matrix": [cell.to_dict() for cell in CELLS],
        "cells": cells,
        "serving_latency": latency,
        "search": search,
    }
    OUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {OUT}")

    # Tuned strictly better everywhere, >= 10% somewhere.
    assert len(cells) >= MIN_CELLS_IMPROVED, cells
    assert all(row["improvement"] > 0 for row in cells), cells
    assert max(row["improvement"] for row in cells) >= MIN_BEST_IMPROVEMENT, (
        cells
    )

    # Serving a tuned plan costs a table lookup, not a search.
    assert all(
        row["ratio"] <= MAX_HIT_LATENCY_RATIO for row in latency
    ), latency

    # The screen pays for itself without changing any winner.
    assert search["winners_identical"], (winners, reference)
    assert search["reduction"] >= MIN_SCREEN_COST_REDUCTION, search

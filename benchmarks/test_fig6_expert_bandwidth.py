"""Figure 6: expert-designed AllGather/AllReduce bandwidth vs buffer size.

Paper findings (A100, 1 MB chunks): at 16 GPUs ResCCL beats NCCL by
28.1%-2.2x (AG) and up to 2.5x (AR), and MSCCL by 12.4%-1.6x (AG) /
10.7%-2.5x (AR); at 32 GPUs >= 38.2% over NCCL beyond 32 MB; only small
(<16 MB) buffers may trail MSCCL (at most 8.3%).
"""

from conftest import once

from repro.experiments import fig6


def test_fig6_expert_bandwidth(once):
    result = once(fig6.run)
    print("\n" + result.render())

    results = result.data
    for (nodes, coll, size), bws in results.items():
        if size >= 128:
            # Medium/large buffers: ResCCL wins against both baselines.
            assert bws["ResCCL"] > bws["NCCL"], (nodes, coll, size)
            assert bws["ResCCL"] > bws["MSCCL"], (nodes, coll, size)
        if size <= 32:
            # Small buffers: ResCCL may trail slightly, but never badly
            # (paper: at most 8.3% behind MSCCL below 16 MB).
            assert bws["ResCCL"] > 0.75 * bws["MSCCL"], (nodes, coll, size)

    # Speedup magnitudes land in the paper's bands at large buffers.
    big_ag = results[(2, "AllGather", 2048)]
    assert big_ag["ResCCL"] / big_ag["NCCL"] > 1.28
    big_ar = results[(2, "AllReduce", 2048)]
    assert 1.05 < big_ar["ResCCL"] / big_ar["MSCCL"] < 2.6

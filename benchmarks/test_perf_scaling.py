"""Perf extension: incremental rate solver + compiled-plan cache.

Times the discrete-event simulator with the incremental dirty-edge rate
allocator against the brute-force reference allocator
(``SimConfig.incremental_rates=False``) on growing collectives, checking
that (a) the two modes complete at the bit-identical simulated instant,
(b) the incremental solver computes strictly fewer edge shares, and
(c) the wall-clock speedup on the largest collective clears the 3x
acceptance bar.  Also replays a repeated compile sweep through the
content-addressed plan cache (``repro.core.plancache``) and asserts a
>0.9 hit rate plus a working disk tier.  Writes ``BENCH_perf.json`` at
the repo root for CI diffing.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from conftest import once

from repro import MB
from repro.algorithms import build_algorithm
from repro.core import ResCCLBackend, ResCCLCompiler
from repro.core.plancache import PlanCache
from repro.runtime.simulator import simulate
from repro.topology import Cluster

OUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: (nodes, gpus, algorithm, max_microbatches, buffer_mb); the last entry
#: is the largest collective and carries the 3x acceptance assertion.
SCALES = (
    (2, 8, "ring-allreduce", 8, 64),
    (2, 8, "mesh-allreduce", 8, 64),
    (4, 8, "mesh-allreduce", 16, 128),
)

MIN_SPEEDUP_LARGEST = 3.0
MIN_CACHE_HIT_RATE = 0.9
SWEEP_POINTS = 12


def _best_wall_time(plan, repeats: int = 2):
    """Best-of-N wall clock of one simulation (first call also warms)."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = simulate(plan)
        best = min(best, time.perf_counter() - start)
    return best, report


def _reference(plan):
    return dataclasses.replace(
        plan,
        config=dataclasses.replace(plan.config, incremental_rates=False),
    )


def _solver_scaling() -> list:
    rows = []
    for nodes, gpus, algo, mbs, buffer_mb in SCALES:
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        program = build_algorithm(algo, cluster)
        plan = ResCCLBackend(max_microbatches=mbs).plan(
            cluster, program, buffer_mb * MB
        )
        wall_fast, fast = _best_wall_time(plan)
        wall_ref, ref = _best_wall_time(_reference(plan))
        rows.append(
            {
                "scale": f"{nodes}x{gpus}",
                "algorithm": algo,
                "buffer_mb": buffer_mb,
                "max_microbatches": mbs,
                "flows": fast.counters.flows_admitted,
                "events_posted": fast.counters.events_posted,
                "events_popped": fast.counters.events_popped,
                "stale_events_skipped": fast.counters.stale_events_skipped,
                "reallocations": fast.counters.reallocations,
                "shares_computed_incremental": fast.counters.shares_computed,
                "shares_computed_reference": ref.counters.shares_computed,
                "completion_time_us": fast.completion_time_us,
                "completion_time_us_reference": ref.completion_time_us,
                "wall_s_incremental": wall_fast,
                "wall_s_reference": wall_ref,
                "speedup": wall_ref / wall_fast,
            }
        )
    return rows


def _cache_sweep(disk_dir: Path) -> dict:
    """A repeated experiment sweep through one plan cache.

    Mirrors what ``resccl experiment`` does: every sweep point re-enters
    ``compile`` for the same (algorithm, cluster) — only the buffer size
    changes, which is a plan-time knob, so every compile after the first
    must hit.
    """
    cluster = Cluster(nodes=2, gpus_per_node=8)
    program = build_algorithm("ring-allreduce", cluster)
    compiler = ResCCLCompiler()

    cache = PlanCache(cache_dir=disk_dir)
    for _ in range(SWEEP_POINTS):
        cache.compile(compiler, program, cluster)

    # A second process (modeled by a fresh cache over the same dir)
    # starts from the disk tier instead of compiling.
    warm = PlanCache(cache_dir=disk_dir)
    warm.compile(compiler, program, cluster)

    return {
        "sweep_points": SWEEP_POINTS,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "hit_rate": cache.stats.hit_rate,
        "disk_writes": cache.stats.disk_writes,
        "cold_process_disk_hits": warm.stats.disk_hits,
    }


def test_perf_scaling(once, tmp_path):
    scaling = once(_solver_scaling)
    cache = _cache_sweep(tmp_path / "plancache")
    result = {"solver": scaling, "plan_cache": cache}
    OUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    for row in scaling:
        print(
            f"  {row['scale']} {row['algorithm']:<16} "
            f"{row['flows']} flows  "
            f"inc {row['wall_s_incremental']:.3f}s vs "
            f"ref {row['wall_s_reference']:.3f}s  "
            f"speedup {row['speedup']:.2f}x"
        )
    print(
        f"  plan cache: {cache['hits']}/{cache['hits'] + cache['misses']} "
        f"hits ({cache['hit_rate']:.1%}), "
        f"{cache['cold_process_disk_hits']} disk hit(s) cold"
    )

    for row in scaling:
        # The optimization is bit-exact on the headline metric and does
        # strictly less rate-solving work.
        assert row["completion_time_us"] == row["completion_time_us_reference"]
        assert (
            row["shares_computed_incremental"]
            < row["shares_computed_reference"]
        ), row
    largest = scaling[-1]
    assert largest["speedup"] >= MIN_SPEEDUP_LARGEST, largest

    assert cache["misses"] == 1, cache
    assert cache["hit_rate"] > MIN_CACHE_HIT_RATE, cache
    assert cache["disk_writes"] == 1, cache
    assert cache["cold_process_disk_hits"] == 1, cache

"""Thousand-GPU simulation scale-up benchmark.

Sweeps mesh-allreduce from 2x8 up to 64x8 (512 GPUs) and records, per
scale, the wall clock of the optimized simulator (vectorized re-rater +
earliest-wins lazy invalidation + batched simultaneous-finish re-rates +
calendar event queue + micro-batch aggregation) against the pre-PR
discipline (scalar rates, binary heap, expanded bookkeeping, eager
repost-every-change invalidation).  Writes ``BENCH_sim_scale.json`` at
the repo root for CI diffing.

Asserted acceptance shape:

* **>= 3x wall-time speedup** over the pre-PR baseline at 16x8;
* **near-linear wall-time-vs-flows scaling** — the log-log exponent of
  wall time against admitted flows across the sweep stays well below
  the super-linear regime the per-event heap + dense re-rater exhibit;
* **bit-identical reports** between the vectorized and scalar re-raters
  in exact mode (work counters excepted);
* **fast fidelity** (``SimConfig.with_fidelity("fast")``) completes
  within 15% of the exact completion time while doing less work.

The baseline is only timed through 16x8: its wall time grows
super-linearly (393 s at 32x8 on the reference VM, vs 38 s optimized),
so larger baseline points would add tens of minutes for no additional
signal.  Scales above 16x8 run the optimized simulator only and are
gated behind ``RESCCL_SIM_BENCH_SCALES=full`` to keep the default
benchmark run short; the committed JSON is generated with the full
sweep.  Timing runs are interleaved baseline/optimized with best-of-N
so single-core machine noise hits both configurations alike.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from pathlib import Path

from conftest import once

from repro import MB
from repro.algorithms import build_algorithm
from repro.core import ResCCLBackend
from repro.runtime.metrics import SimCounters
from repro.runtime.simulator import simulate
from repro.topology import Cluster

OUT = Path(__file__).resolve().parent.parent / "BENCH_sim_scale.json"

ALGO = "mesh-allreduce"
BUFFER_MB = 64
MAX_MICROBATCHES = 4

#: Node counts (x8 GPUs each) always swept; the baseline is timed at
#: every one of these and the 3x assertion applies to the largest.
SCALES = (2, 4, 8, 16)
#: Optimized-only extension swept when RESCCL_SIM_BENCH_SCALES=full.
FULL_SCALES = (32, 64)

MIN_SPEEDUP_AT_16X8 = 3.0
#: Upper bound on the log-log wall-vs-flows exponent across the sweep.
#: Linear scaling is 1.0; the pre-PR simulator measures ~1.8-2.0 on the
#: same sweep.  1.35 leaves room for log-factor queue costs and timer
#: noise while still rejecting any super-linear regression.
MAX_SCALING_EXPONENT = 1.35
MAX_FAST_REL_ERROR = 0.15

#: The pre-PR simulator discipline, emulated in-tree: scalar re-rater,
#: plain binary heap, fully expanded micro-batch bookkeeping, and eager
#: repost-every-rate-change event invalidation.
BASELINE = dict(
    vectorized_rates=False,
    event_queue="heap",
    aggregate_microbatches=False,
    lazy_invalidation=False,
)


def _with_config(plan, **overrides):
    return dataclasses.replace(
        plan, config=dataclasses.replace(plan.config, **overrides)
    )


def _fingerprint(report):
    """Physical report identity: everything but the work counters."""
    data = dataclasses.asdict(report)
    for fieldname in SimCounters.WORK_COUNTER_FIELDS:
        data["counters"].pop(fieldname)
    data["mode"] = report.mode.value
    return data


def _interleaved_best(plans, repeats=2):
    """Best-of-N wall clock per plan, rounds interleaved across plans.

    On a single-core VM a background hiccup during one measurement run
    would skew a sequential A/A/B/B ordering; interleaving A/B/A/B makes
    the best-of representative for both.
    """
    best = [math.inf] * len(plans)
    reports = [None] * len(plans)
    for _ in range(repeats):
        for i, plan in enumerate(plans):
            start = time.perf_counter()
            reports[i] = simulate(plan)
            best[i] = min(best[i], time.perf_counter() - start)
    return best, reports


def _plan_for(nodes):
    cluster = Cluster(nodes=nodes, gpus_per_node=8)
    program = build_algorithm(ALGO, cluster)
    return ResCCLBackend(max_microbatches=MAX_MICROBATCHES).plan(
        cluster, program, BUFFER_MB * MB
    )


def _sweep():
    full = os.environ.get("RESCCL_SIM_BENCH_SCALES", "") == "full"
    rows = []
    for nodes in SCALES + (FULL_SCALES if full else ()):
        plan = _plan_for(nodes)
        time_baseline = nodes <= max(SCALES)
        # Large optimized-only points are stable enough single-shot and
        # expensive enough (190 s at 64x8) that repeats would double the
        # sweep for little signal.
        repeats = 2 if time_baseline else 1
        plans = [plan] + ([_with_config(plan, **BASELINE)] if time_baseline else [])
        walls, reports = _interleaved_best(plans, repeats=repeats)
        new = reports[0]
        c = new.counters
        row = {
            "scale": f"{nodes}x8",
            "gpus": nodes * 8,
            "flows": c.flows_admitted,
            "events_posted": c.events_posted,
            "events_popped": c.events_popped,
            "stale_events_skipped": c.stale_events_skipped,
            "rate_updates": c.rate_updates,
            "reallocations": c.reallocations,
            "vectorized_passes": c.vectorized_passes,
            "queue_depth_max": c.queue_depth_max,
            "bucket_occupancy_max": c.bucket_occupancy_max,
            "agg_tasks_cached": c.agg_tasks_cached,
            "completion_time_us": new.completion_time_us,
            "wall_s": walls[0],
            "wall_s_baseline": walls[1] if time_baseline else None,
            "speedup": walls[1] / walls[0] if time_baseline else None,
        }
        rows.append(row)
        print(
            f"  {row['scale']:>5} {row['flows']:>7} flows  "
            f"new {row['wall_s']:.2f}s"
            + (
                f"  base {row['wall_s_baseline']:.2f}s  "
                f"speedup {row['speedup']:.2f}x"
                if time_baseline
                else "  (optimized only)"
            ),
            flush=True,
        )
    return rows


def _fingerprint_identity():
    """Vectorized and scalar re-raters pin the same physical report."""
    plan = _plan_for(4)
    vec = simulate(_with_config(plan, vectorized_rates=True, vectorize_min_flows=0))
    scalar = simulate(_with_config(plan, vectorized_rates=False))
    return {
        "scale": "4x8",
        "vectorized_equals_scalar": _fingerprint(vec) == _fingerprint(scalar),
        "vectorized_passes": vec.counters.vectorized_passes,
        "scalar_passes": scalar.counters.scalar_passes,
    }


def _fidelity_check():
    """Fast fidelity stays within the documented completion error bound.

    Measured at 2x8 — the largest sweep scale where ``plan_microbatches``
    still yields n_microbatches > 1 for this algorithm/buffer (mesh
    chunk count equals the rank count, so at 8x8 and above a 64 MB
    buffer plans a single micro-batch and collapse has nothing to do).
    The collapse approximation trades away micro-batch pipeline overlap,
    so its error grows with fabric contention; 15% is the contract at
    micro-batched scales, not a universal bound.
    """
    plan = _plan_for(2)
    exact = simulate(plan)
    t0 = time.perf_counter()
    fast = simulate(
        dataclasses.replace(plan, config=plan.config.with_fidelity("fast"))
    )
    wall_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulate(plan)
    wall_exact = time.perf_counter() - t0
    rel = abs(fast.completion_time_us - exact.completion_time_us) / (
        exact.completion_time_us
    )
    return {
        "scale": "2x8",
        "n_microbatches": plan.n_microbatches,
        "completion_exact_us": exact.completion_time_us,
        "completion_fast_us": fast.completion_time_us,
        "rel_error": rel,
        "bound": MAX_FAST_REL_ERROR,
        "wall_s_exact": wall_exact,
        "wall_s_fast": wall_fast,
        "fast_runs_collapsed": fast.counters.agg_runs_collapsed,
        "fast_rate_updates": fast.counters.rate_updates,
        "exact_rate_updates": exact.counters.rate_updates,
    }


def test_sim_scale(once):
    rows = once(_sweep)
    identity = _fingerprint_identity()
    fidelity = _fidelity_check()
    result = {
        "algorithm": ALGO,
        "buffer_mb": BUFFER_MB,
        "max_microbatches": MAX_MICROBATCHES,
        "baseline_config": BASELINE,
        "scales": rows,
        "fingerprint_identity": identity,
        "fidelity": fidelity,
    }
    OUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {OUT}")

    # >= 3x over the pre-PR discipline at the largest baselined scale.
    largest_baselined = [r for r in rows if r["speedup"] is not None][-1]
    assert largest_baselined["scale"] == "16x8"
    assert largest_baselined["speedup"] >= MIN_SPEEDUP_AT_16X8, largest_baselined

    # Near-linear wall-vs-flows scaling across the sweep (8x8 up, where
    # fixed per-run costs no longer dominate the measurement).
    lo = next(r for r in rows if r["scale"] == "8x8")
    hi = rows[-1]
    exponent = math.log(hi["wall_s"] / lo["wall_s"]) / math.log(
        hi["flows"] / lo["flows"]
    )
    print(
        f"  wall-vs-flows exponent {lo['scale']}->{hi['scale']}: "
        f"{exponent:.2f} (bound {MAX_SCALING_EXPONENT})"
    )
    assert exponent <= MAX_SCALING_EXPONENT, (lo, hi, exponent)

    # Exact mode: the numpy re-rater is an optimization, not a model.
    assert identity["vectorized_equals_scalar"], identity
    assert identity["vectorized_passes"] > 0, identity
    assert identity["scalar_passes"] > 0, identity

    # Fast fidelity: collapse actually engaged, bounded completion
    # error, strictly less rate work.
    assert fidelity["n_microbatches"] > 1, fidelity
    assert fidelity["fast_runs_collapsed"] > 0, fidelity
    assert fidelity["rel_error"] <= MAX_FAST_REL_ERROR, fidelity
    assert fidelity["fast_rate_updates"] < fidelity["exact_rate_updates"], fidelity

"""Figure 10(a): offline workflow phase times vs cluster scale.

The paper measures the four serial compiler phases — Parsing, Analysis,
Scheduling, Lowering — up to 1,024 host-emulated GPUs (~11 minutes,
once, offline).  This measures the *actual* wall-clock of this
implementation at 16-256 ranks; growth trends extrapolate.
"""

from conftest import once

from repro.experiments import fig10


def test_fig10a_workflow_phases(once):
    result = once(fig10.run_phases)
    print("\n" + result.render())

    results = result.data
    totals = [sum(phases.values()) for _, _, phases in results]
    # Cost grows with scale...
    assert totals[-1] > totals[0]
    # ...but remains a once-off cost measured in seconds at 256 GPUs
    # (vs multi-hour training runs).
    assert totals[-1] < 600e6  # < 10 minutes
    # Each phase reports a positive measured time at the largest scale.
    assert all(t > 0 for t in results[-1][2].values())

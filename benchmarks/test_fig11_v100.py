"""Figure 11: custom algorithms on the heterogeneous V100 cluster.

Paper findings (V100, 100G RoCE): ResCCL over NCCL 2.1x-4.2x depending
on the operator, and over MSCCL up to 2.7x (AG small), 30.4% (RS),
68.2% (AR).
"""

from conftest import once

from repro.experiments import fig11


def test_fig11_v100_custom_algorithms(once):
    result = once(fig11.run)
    print("\n" + result.render())

    results = result.data
    for (name, size), bws in results.items():
        if size >= 128:
            assert bws["ResCCL"] > bws["NCCL"], (name, size)
            assert bws["ResCCL"] >= 0.99 * bws["MSCCL"], (name, size)
    # AllGather's large-buffer NCCL gap lands in the paper's multi-x band.
    ag = results[("HM-AllGather", 2048)]
    assert ag["ResCCL"] / ag["NCCL"] > 1.3

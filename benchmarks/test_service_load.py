"""Load benchmark for the compile/simulate service daemon.

Boots a real :class:`~repro.service.ServiceDaemon` (worker processes,
HTTP, the lot) and drives it through three phases:

1. **cold** — distinct plan-cache keys, every request pays a compile;
2. **warm** — a multi-threaded closed loop over the now-cached keys,
   measuring sustained req/s and the p50/p99 latency the issue asks for;
3. **chaos** — one cold request whose worker is SIGKILLed mid-compute,
   measuring time from kill to the (verified, exactly-once) response.

Every response digest is checked against a fresh in-process execution
of the same request — the *verified responses, no duplicates* bar.
Writes ``BENCH_service.json`` at the repo root for CI diffing.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path

from conftest import once  # noqa: F401 - pytest fixture re-export

from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    parse_request,
    result_digest,
)
from repro.service.protocol import execute

OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

WORKERS = 2
CLIENT_THREADS = 4
WARM_SECONDS = 3.0

#: Cold-phase request bodies — distinct plan-cache keys of mixed cost.
COLD_BODIES = [
    {"algorithm": "ring-allreduce", "nodes": 1, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "ring-allgather", "nodes": 1, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "ring-reducescatter", "nodes": 1, "gpus": 8,
     "buffer_mb": 16.0},
    {"algorithm": "mesh-allreduce", "nodes": 2, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "hm-allreduce", "nodes": 2, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "tree-allreduce", "nodes": 1, "gpus": 8, "buffer_mb": 16.0},
]

#: The chaos victim: slow enough (>1s cold) to SIGKILL mid-compute.
CHAOS_BODY = {"algorithm": "mesh-allreduce", "nodes": 6, "gpus": 8,
              "buffer_mb": 16.0, "mbs": 8}


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _phase_summary(latencies_ms, wall_s):
    ordered = sorted(latencies_ms)
    return {
        "requests": len(ordered),
        "wall_s": round(wall_s, 3),
        "req_per_s": round(len(ordered) / wall_s, 2) if wall_s else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "max_ms": round(max(ordered), 3) if ordered else 0.0,
    }


def _expected_digests():
    """Ground truth: run every request body in-process once."""
    return {
        json.dumps(body, sort_keys=True): result_digest(
            execute(parse_request("simulate", body).to_payload())
        )
        for body in COLD_BODIES + [CHAOS_BODY]
    }


def _run_service_load(cache_dir):
    daemon = ServiceDaemon(ServiceConfig(
        port=0, workers=WORKERS, queue_depth=64, cache_dir=str(cache_dir),
        default_deadline_ms=120_000.0,
    ))
    daemon.start()
    failures = []
    duplicate_check = {}

    def verify(body, reply):
        key = json.dumps(body, sort_keys=True)
        digest = reply["result_digest"]
        previous = duplicate_check.setdefault(key, digest)
        if previous != digest:
            failures.append(f"digest mismatch for {key}")

    try:
        # -- phase 1: cold ------------------------------------------------
        cold_latencies = []
        cold_start = time.perf_counter()
        with ServiceClient("127.0.0.1", daemon.port, timeout_s=300.0) as client:
            for body in COLD_BODIES:
                t0 = time.perf_counter()
                reply = client.simulate(**body)
                cold_latencies.append((time.perf_counter() - t0) * 1e3)
                if reply["degraded"]:
                    failures.append(f"cold request degraded: {body}")
                verify(body, reply)
        cold_wall = time.perf_counter() - cold_start

        # -- phase 2: warm sustained load ---------------------------------
        warm_latencies = []
        warm_lock = threading.Lock()
        stop_at = time.perf_counter() + WARM_SECONDS

        def closed_loop(offset):
            with ServiceClient("127.0.0.1", daemon.port,
                               timeout_s=300.0) as client:
                index = offset
                while time.perf_counter() < stop_at:
                    body = COLD_BODIES[index % len(COLD_BODIES)]
                    index += 1
                    t0 = time.perf_counter()
                    try:
                        reply = client.simulate(**body)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(f"warm request failed: {exc!r}")
                        return
                    elapsed_ms = (time.perf_counter() - t0) * 1e3
                    with warm_lock:
                        warm_latencies.append(elapsed_ms)
                        verify(body, reply)

        warm_start = time.perf_counter()
        threads = [
            threading.Thread(target=closed_loop, args=(i,))
            for i in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        warm_wall = time.perf_counter() - warm_start

        # -- phase 3: chaos recovery --------------------------------------
        chaos_reply = {}

        def chaos_call():
            with ServiceClient("127.0.0.1", daemon.port,
                               timeout_s=300.0) as client:
                try:
                    chaos_reply["reply"] = client.simulate(**CHAOS_BODY)
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(f"chaos request failed: {exc!r}")

        chaos_thread = threading.Thread(target=chaos_call)
        chaos_thread.start()
        deadline = time.time() + 15
        while not daemon.pool.busy_pids() and time.time() < deadline:
            time.sleep(0.01)
        victims = daemon.pool.busy_pids()
        kill_at = time.perf_counter()
        if victims:
            os.kill(victims[0], signal.SIGKILL)
        else:
            failures.append("chaos: no busy worker to kill")
        chaos_thread.join(timeout=300)
        recovery_s = time.perf_counter() - kill_at
        if "reply" in chaos_reply:
            verify(CHAOS_BODY, chaos_reply["reply"])

        restarts = daemon.pool.stats.restarts
        pool_stats = daemon.pool.stats.snapshot()
        with ServiceClient("127.0.0.1", daemon.port) as client:
            health = client.healthz()
    finally:
        daemon.stop()

    return {
        "workers": WORKERS,
        "client_threads": CLIENT_THREADS,
        "cold": _phase_summary(cold_latencies, cold_wall),
        "warm": _phase_summary(warm_latencies, warm_wall),
        "chaos": {
            "worker_killed": bool(victims),
            "recovery_s": round(recovery_s, 3),
            "worker_restarts": restarts,
            "healthz_after": health.get("status"),
        },
        "pool_stats": pool_stats,
        "failures": failures,
        "digests": duplicate_check,
    }


def test_service_load(tmp_path, once):
    data = once(_run_service_load, tmp_path / "plan-cache")

    expected = _expected_digests()
    digest_mismatches = {
        key: (digest, expected[key])
        for key, digest in data.pop("digests").items()
        if expected.get(key) != digest
    }

    print("\nservice load:")
    for phase in ("cold", "warm"):
        summary = data[phase]
        print(
            f"  {phase:>5}: {summary['requests']} requests, "
            f"{summary['req_per_s']} req/s, p50 {summary['p50_ms']} ms, "
            f"p99 {summary['p99_ms']} ms"
        )
    print(
        f"  chaos: worker killed, recovered in {data['chaos']['recovery_s']}s "
        f"({data['chaos']['worker_restarts']} restart(s)), healthz "
        f"{data['chaos']['healthz_after']}"
    )

    OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")

    # Robustness bars: zero failed requests, verified exactly-once
    # responses, warm traffic faster than cold, daemon healthy after
    # losing a worker mid-request.
    assert not data["failures"], data["failures"]
    assert not digest_mismatches, digest_mismatches
    assert data["warm"]["requests"] > data["cold"]["requests"]
    assert data["warm"]["p99_ms"] < 10_000  # sanity, not a perf target
    assert data["warm"]["req_per_s"] > data["cold"]["req_per_s"]
    assert data["chaos"]["worker_killed"]
    assert data["chaos"]["worker_restarts"] >= 1
    assert data["chaos"]["healthz_after"] == "ok"

"""Load benchmark for the compile/simulate service daemon.

Boots a real :class:`~repro.service.ServiceDaemon` (worker processes,
HTTP, the lot) and drives it through three phases:

1. **cold** — distinct plan-cache keys, every request pays a compile;
2. **warm** — a multi-threaded closed loop over the now-cached keys,
   measuring sustained req/s and the p50/p99 latency the issue asks for;
3. **chaos** — one cold request whose worker is SIGKILLed mid-compute,
   measuring time from kill to the (verified, exactly-once) response.

Every response digest is checked against a fresh in-process execution
of the same request — the *verified responses, no duplicates* bar.
Writes ``BENCH_service.json`` at the repo root for CI diffing.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path

from conftest import once  # noqa: F401 - pytest fixture re-export

from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    parse_request,
    result_digest,
)
from repro.service.protocol import execute

OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

WORKERS = 2
CLIENT_THREADS = 4
WARM_SECONDS = 3.0

#: Cold-phase request bodies — distinct plan-cache keys of mixed cost.
COLD_BODIES = [
    {"algorithm": "ring-allreduce", "nodes": 1, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "ring-allgather", "nodes": 1, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "ring-reducescatter", "nodes": 1, "gpus": 8,
     "buffer_mb": 16.0},
    {"algorithm": "mesh-allreduce", "nodes": 2, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "hm-allreduce", "nodes": 2, "gpus": 8, "buffer_mb": 16.0},
    {"algorithm": "tree-allreduce", "nodes": 1, "gpus": 8, "buffer_mb": 16.0},
]

#: The chaos victim: slow enough (>1s cold) to SIGKILL mid-compute.
CHAOS_BODY = {"algorithm": "mesh-allreduce", "nodes": 6, "gpus": 8,
              "buffer_mb": 16.0, "mbs": 8}


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _phase_summary(latencies_ms, wall_s):
    ordered = sorted(latencies_ms)
    return {
        "requests": len(ordered),
        "wall_s": round(wall_s, 3),
        "req_per_s": round(len(ordered) / wall_s, 2) if wall_s else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "max_ms": round(max(ordered), 3) if ordered else 0.0,
    }


def _expected_digests():
    """Ground truth: run every request body in-process once."""
    return {
        json.dumps(body, sort_keys=True): result_digest(
            execute(parse_request("simulate", body).to_payload())
        )
        for body in COLD_BODIES + [CHAOS_BODY]
    }


def _run_service_load(cache_dir):
    daemon = ServiceDaemon(ServiceConfig(
        port=0, workers=WORKERS, queue_depth=64, cache_dir=str(cache_dir),
        default_deadline_ms=120_000.0,
    ))
    daemon.start()
    failures = []
    duplicate_check = {}

    def verify(body, reply):
        key = json.dumps(body, sort_keys=True)
        digest = reply["result_digest"]
        previous = duplicate_check.setdefault(key, digest)
        if previous != digest:
            failures.append(f"digest mismatch for {key}")

    try:
        # -- phase 1: cold ------------------------------------------------
        cold_latencies = []
        cold_start = time.perf_counter()
        with ServiceClient("127.0.0.1", daemon.port, timeout_s=300.0) as client:
            for body in COLD_BODIES:
                t0 = time.perf_counter()
                reply = client.simulate(**body)
                cold_latencies.append((time.perf_counter() - t0) * 1e3)
                if reply["degraded"]:
                    failures.append(f"cold request degraded: {body}")
                verify(body, reply)
        cold_wall = time.perf_counter() - cold_start

        # -- phase 2: warm sustained load ---------------------------------
        warm_latencies = []
        warm_lock = threading.Lock()
        stop_at = time.perf_counter() + WARM_SECONDS

        def closed_loop(offset):
            with ServiceClient("127.0.0.1", daemon.port,
                               timeout_s=300.0) as client:
                index = offset
                while time.perf_counter() < stop_at:
                    body = COLD_BODIES[index % len(COLD_BODIES)]
                    index += 1
                    t0 = time.perf_counter()
                    try:
                        reply = client.simulate(**body)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(f"warm request failed: {exc!r}")
                        return
                    elapsed_ms = (time.perf_counter() - t0) * 1e3
                    with warm_lock:
                        warm_latencies.append(elapsed_ms)
                        verify(body, reply)

        warm_start = time.perf_counter()
        threads = [
            threading.Thread(target=closed_loop, args=(i,))
            for i in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        warm_wall = time.perf_counter() - warm_start

        # -- phase 3: chaos recovery --------------------------------------
        chaos_reply = {}

        def chaos_call():
            with ServiceClient("127.0.0.1", daemon.port,
                               timeout_s=300.0) as client:
                try:
                    chaos_reply["reply"] = client.simulate(**CHAOS_BODY)
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(f"chaos request failed: {exc!r}")

        chaos_thread = threading.Thread(target=chaos_call)
        chaos_thread.start()
        deadline = time.time() + 15
        while not daemon.pool.busy_pids() and time.time() < deadline:
            time.sleep(0.01)
        victims = daemon.pool.busy_pids()
        kill_at = time.perf_counter()
        if victims:
            os.kill(victims[0], signal.SIGKILL)
        else:
            failures.append("chaos: no busy worker to kill")
        chaos_thread.join(timeout=300)
        recovery_s = time.perf_counter() - kill_at
        if "reply" in chaos_reply:
            verify(CHAOS_BODY, chaos_reply["reply"])

        restarts = daemon.pool.stats.restarts
        pool_stats = daemon.pool.stats.snapshot()
        with ServiceClient("127.0.0.1", daemon.port) as client:
            health = client.healthz()
    finally:
        daemon.stop()

    return {
        "workers": WORKERS,
        "client_threads": CLIENT_THREADS,
        "cold": _phase_summary(cold_latencies, cold_wall),
        "warm": _phase_summary(warm_latencies, warm_wall),
        "chaos": {
            "worker_killed": bool(victims),
            "recovery_s": round(recovery_s, 3),
            "worker_restarts": restarts,
            "healthz_after": health.get("status"),
        },
        "pool_stats": pool_stats,
        "failures": failures,
        "digests": duplicate_check,
    }


def test_service_load(tmp_path, once):
    data = once(_run_service_load, tmp_path / "plan-cache")

    expected = _expected_digests()
    digest_mismatches = {
        key: (digest, expected[key])
        for key, digest in data.pop("digests").items()
        if expected.get(key) != digest
    }

    print("\nservice load:")
    for phase in ("cold", "warm"):
        summary = data[phase]
        print(
            f"  {phase:>5}: {summary['requests']} requests, "
            f"{summary['req_per_s']} req/s, p50 {summary['p50_ms']} ms, "
            f"p99 {summary['p99_ms']} ms"
        )
    print(
        f"  chaos: worker killed, recovered in {data['chaos']['recovery_s']}s "
        f"({data['chaos']['worker_restarts']} restart(s)), healthz "
        f"{data['chaos']['healthz_after']}"
    )

    _merge_out(data)
    print(f"wrote {OUT}")

    # Robustness bars: zero failed requests, verified exactly-once
    # responses, warm traffic faster than cold, daemon healthy after
    # losing a worker mid-request.
    assert not data["failures"], data["failures"]
    assert not digest_mismatches, digest_mismatches
    assert data["warm"]["requests"] > data["cold"]["requests"]
    assert data["warm"]["p99_ms"] < 10_000  # sanity, not a perf target
    assert data["warm"]["req_per_s"] > data["cold"]["req_per_s"]
    assert data["chaos"]["worker_killed"]
    assert data["chaos"]["worker_restarts"] >= 1
    assert data["chaos"]["healthz_after"] == "ok"


# ----------------------------------------------------------------------
# Crash-only lifecycle: drain, hot restart, kill -9 replay, failover
# ----------------------------------------------------------------------

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The hot key for the restart phases: slow enough cold (>1 s) that a
#: prewarmed hot restart is unambiguously faster than the cold path.
HOT_BODY = {"algorithm": "mesh-allreduce", "nodes": 6, "gpus": 8,
            "buffer_mb": 16.0, "mbs": 8}
#: Quick body for the drain-under-load closed loop.
LOAD_BODY = {"algorithm": "ring-allreduce", "nodes": 1, "gpus": 8,
             "buffer_mb": 16.0, "mbs": 4}
#: Distinct slow body whose daemon gets SIGKILLed mid-compute: it must
#: be journaled-but-incomplete so the next boot replays it.
KILL_BODY = {"algorithm": "mesh-allreduce", "nodes": 6, "gpus": 8,
             "buffer_mb": 16.0, "mbs": 4}


def _merge_out(section_data):
    """Read-modify-write BENCH_service.json so the load and restart
    benchmarks can each run (and re-run) independently."""
    data = {}
    if OUT.exists():
        try:
            data = json.loads(OUT.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            data = {}
    data.update(section_data)
    OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def _free_port():
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_daemon(port, journal_dir=None, cache_dir=None, workers=2):
    """``resccl serve`` in a real subprocess (signals, kill -9, exit
    codes — everything the embedded daemon cannot exercise)."""
    import subprocess
    import sys

    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port), "--workers", str(workers),
        "--default-deadline-ms", "120000",
    ]
    if journal_dir is not None:
        argv += ["--journal-dir", str(journal_dir)]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.Popen(
        argv, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


def _wait_ready(port, timeout_s=90.0):
    """Poll /readyz until green; returns the elapsed seconds."""
    started = time.perf_counter()
    deadline = started + timeout_s
    while time.perf_counter() < deadline:
        try:
            with ServiceClient("127.0.0.1", port, timeout_s=5.0) as client:
                if client.readyz()["http_status"] == 200:
                    return time.perf_counter() - started
        except Exception:  # noqa: BLE001 - daemon still booting
            pass
        time.sleep(0.05)
    raise TimeoutError(f"daemon on port {port} not ready in {timeout_s}s")


def _journal_incomplete(journal_dir, algorithm):
    """Begin-without-end entries for ``algorithm`` currently on disk."""
    path = Path(journal_dir) / "journal.jsonl"
    if not path.exists():
        return []
    begins, ends = {}, set()
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if record.get("kind") == "begin":
            begins[record["id"]] = record
        elif record.get("kind") == "end":
            ends.add(record["id"])
    return [r for rid, r in begins.items()
            if rid not in ends
            and r.get("payload", {}).get("algorithm") == algorithm]


def _journal_ends(journal_dir, entry_id):
    path = Path(journal_dir) / "journal.jsonl"
    ends = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if record.get("kind") == "end" and record.get("id") == entry_id:
            ends.append(record)
    return ends


def _run_service_restart(base_dir):
    from repro.service import ServiceClientPool

    journal_dir = base_dir / "journal"
    cache_dir = base_dir / "cache"
    failures = []
    procs = []
    try:
        # -- phase 1: cold boot + cold first hit on the hot key -------
        port_a = _free_port()
        boot_at = time.perf_counter()
        proc_a = _spawn_daemon(port_a, journal_dir, cache_dir)
        procs.append(proc_a)
        cold_ready_s = _wait_ready(port_a)
        with ServiceClient("127.0.0.1", port_a, timeout_s=300.0) as client:
            reply = client.simulate(**HOT_BODY)
            cold_first_hit_s = time.perf_counter() - boot_at
            hot_digest = reply["result_digest"]
            client.simulate(**HOT_BODY)  # second touch ranks it hottest

        # -- phase 2: SIGTERM drain under load -------------------------
        drained = {"clean_stops": 0, "completed": 0}
        drain_lock = threading.Lock()

        def drain_loop():
            from repro.service import (
                ServiceError,
                ServiceUnavailable,
            )

            with ServiceClient("127.0.0.1", port_a,
                               timeout_s=300.0) as client:
                while True:
                    try:
                        client.simulate(**LOAD_BODY)
                    except ServiceError as exc:
                        if exc.status == 503:  # draining: clean stop
                            with drain_lock:
                                drained["clean_stops"] += 1
                            return
                        failures.append(f"drain load error: {exc!r}")
                        return
                    except ServiceUnavailable as exc:
                        if exc.delivered:
                            failures.append(
                                f"drain dropped in-flight reply: {exc!r}"
                            )
                        else:  # daemon already gone: clean stop
                            with drain_lock:
                                drained["clean_stops"] += 1
                        return
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(f"drain load error: {exc!r}")
                        return
                    with drain_lock:
                        drained["completed"] += 1

        threads = [threading.Thread(target=drain_loop) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.5)  # load is in flight when the signal lands
        proc_a.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(timeout=120)
        rc_a = proc_a.wait(timeout=120)

        # -- phase 3: hot restart (journal + prewarm manifest) ---------
        port_b = _free_port()
        boot_at = time.perf_counter()
        proc_b = _spawn_daemon(port_b, journal_dir, cache_dir)
        procs.append(proc_b)
        hot_ready_s = _wait_ready(port_b)
        with ServiceClient("127.0.0.1", port_b, timeout_s=300.0) as client:
            lifecycle = client.debug_lifecycle()
            t0 = time.perf_counter()
            warm = client.simulate(**HOT_BODY)
            warm_hit_ms = (time.perf_counter() - t0) * 1e3
        if warm["result_digest"] != hot_digest:
            failures.append("hot-restart digest drifted across restart")
        if not warm["result"]["cache_hit"]:
            failures.append("first post-restart hot request missed cache")

        # -- phase 4: kill -9 mid-flight, restart, journal replay ------
        def doomed_call():
            try:
                with ServiceClient("127.0.0.1", port_b,
                                   timeout_s=300.0) as client:
                    client.simulate(**KILL_BODY)
            except Exception:  # noqa: BLE001 - the kill is the point
                pass

        doomed = threading.Thread(target=doomed_call)
        doomed.start()
        kill_deadline = time.time() + 60
        incomplete = []
        while time.time() < kill_deadline:
            incomplete = _journal_incomplete(
                journal_dir, KILL_BODY["algorithm"]
            )
            if incomplete:
                break
            time.sleep(0.02)
        if not incomplete:
            failures.append("kill -9: request never reached the journal")
        proc_b.kill()  # SIGKILL: no drain, no end record
        proc_b.wait(timeout=60)
        doomed.join(timeout=60)

        port_c = _free_port()
        proc_c = _spawn_daemon(port_c, journal_dir, cache_dir)
        procs.append(proc_c)
        replay_ready_s = _wait_ready(port_c)
        with ServiceClient("127.0.0.1", port_c, timeout_s=300.0) as client:
            replay_report = client.debug_lifecycle()
        replay_digest_ok = False
        replayed_exactly_once = False
        if incomplete:
            expected = result_digest(execute(
                parse_request("simulate", dict(KILL_BODY)).to_payload()
            ))
            ends = _journal_ends(journal_dir, incomplete[0]["id"])
            replayed_exactly_once = len(ends) == 1
            replay_digest_ok = bool(
                ends and ends[0].get("status") == 200
                and ends[0].get("digest") == expected
            )
            if not replayed_exactly_once:
                failures.append(f"replay wrote {len(ends)} end records")
            if not replay_digest_ok:
                failures.append("replayed result digest does not match a "
                                "fresh in-process execution")

        # -- phase 5: client pool survives a hard-killed replica -------
        port_d = _free_port()
        proc_d = _spawn_daemon(port_d, None, cache_dir)
        procs.append(proc_d)
        _wait_ready(port_d)
        pool_errors = []
        with ServiceClientPool(
            [("127.0.0.1", port_c), ("127.0.0.1", port_d)],
            timeout_s=300.0, failure_threshold=1,
        ) as pool:
            for index in range(10):
                if index == 3:
                    proc_c.kill()  # hard-kill the preferred replica
                    proc_c.wait(timeout=60)
                try:
                    pool.simulate(**LOAD_BODY)
                except Exception as exc:  # noqa: BLE001 - recorded
                    pool_errors.append(repr(exc))
            pool_failovers = pool.failovers
        if pool_errors:
            failures.append(f"pool client errors: {pool_errors}")

        proc_d.send_signal(signal.SIGTERM)
        rc_d = proc_d.wait(timeout=120)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    return {
        "restart": {
            "cold": {
                "time_to_ready_s": round(cold_ready_s, 3),
                "time_to_first_warm_hit_s": round(cold_first_hit_s, 3),
            },
            "drain": {
                "exit_code": rc_a,
                "completed_under_load": drained["completed"],
                "clean_client_stops": drained["clean_stops"],
            },
            "hot": {
                "time_to_ready_s": round(hot_ready_s, 3),
                "prewarmed": lifecycle.get("prewarmed"),
                "first_hit_ms": round(warm_hit_ms, 3),
                "cache_hit": bool(warm["result"]["cache_hit"]),
            },
            "replay": {
                "time_to_ready_s": round(replay_ready_s, 3),
                "journal_replayed": replay_report.get("journal_replayed"),
                "digest_verified": replay_digest_ok,
                "exactly_once": replayed_exactly_once,
            },
            "pool": {
                "client_errors": len(pool_errors),
                "failovers": pool_failovers,
                "survivor_exit_code": rc_d,
            },
            "failures": failures,
        }
    }


def test_service_restart(tmp_path, once):
    data = once(_run_service_restart, tmp_path)
    restart = data["restart"]

    print("\nservice restart:")
    print(
        f"   cold: ready {restart['cold']['time_to_ready_s']}s, first "
        f"warm hit {restart['cold']['time_to_first_warm_hit_s']}s"
    )
    print(
        f"  drain: exit {restart['drain']['exit_code']}, "
        f"{restart['drain']['completed_under_load']} served under load, "
        f"{restart['drain']['clean_client_stops']} clean client stops"
    )
    print(
        f"    hot: ready {restart['hot']['time_to_ready_s']}s "
        f"({restart['hot']['prewarmed']} prewarmed), first hit "
        f"{restart['hot']['first_hit_ms']}ms "
        f"(cache_hit={restart['hot']['cache_hit']})"
    )
    print(
        f" replay: {restart['replay']['journal_replayed']} journal "
        f"entr(ies), digest_verified={restart['replay']['digest_verified']}"
    )
    print(
        f"   pool: {restart['pool']['client_errors']} client errors, "
        f"{restart['pool']['failovers']} failovers"
    )

    _merge_out(data)
    print(f"wrote {OUT}")

    # The crash-only bars from the issue.
    assert not restart["failures"], restart["failures"]
    assert restart["drain"]["exit_code"] == 0
    assert restart["drain"]["completed_under_load"] >= 1
    # A hot restart (journal + prewarm) beats paying the cold compile.
    assert (restart["hot"]["time_to_ready_s"]
            < restart["cold"]["time_to_first_warm_hit_s"])
    assert restart["hot"]["cache_hit"] is True
    assert restart["replay"]["journal_replayed"] >= 1
    assert restart["replay"]["digest_verified"] is True
    assert restart["replay"]["exactly_once"] is True
    assert restart["pool"]["client_errors"] == 0
    assert restart["pool"]["failovers"] >= 1
    assert restart["pool"]["survivor_exit_code"] == 0

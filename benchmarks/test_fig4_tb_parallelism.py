"""Figure 4: impact of TB parallelism on communication bandwidth.

The paper emulates a two-GPU AllGather over a single NIC while varying
the TB count: bandwidth climbs to a peak at four (4-warp) TBs — where
aggregate thread-level copy capability matches line rate — then degrades
as extra TBs contend for the link (the communication-dependency evidence
motivating Equation 1).
"""

from conftest import once

from repro.experiments import fig4


def test_fig4_tb_parallelism(once):
    result = once(fig4.run)
    print("\n" + result.render())

    by_count = dict(result.data)
    peak = max(by_count.values())
    # Rising region: each TB adds capability until the link saturates.
    assert by_count[1] < by_count[2] < by_count[4]
    # 4 TBs is the sweet spot (aggregate capability == line rate).
    assert by_count[4] == peak
    # Over-subscription degrades bandwidth (Equation 1's penalty).
    assert by_count[8] < by_count[4]
    assert by_count[16] < by_count[8]

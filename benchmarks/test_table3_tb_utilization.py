"""Table 3: TB resource utilization, ResCCL vs MSCCL, four topologies.

Paper highlights: expert TB counts 14 -> 8 (Topo1) and 30 -> 16 (Topo2);
synthesized TB savings up to 77.8% and average idle reductions up to
41.6 points; MSCCL's worst TBs idle up to 99.9%.
"""

from conftest import once

from repro.experiments import table3


def test_table3_tb_utilization(once):
    result = once(table3.run)
    print("\n" + result.render())

    results = result.data
    tb_savings = []
    idle_gains = []
    for (topo, algo), backends in results.items():
        msccl, resccl = backends["MSCCL"], backends["ResCCL"]
        # ResCCL always uses fewer TBs on the same algorithm.
        assert resccl.tbs_per_rank < msccl.tbs_per_rank, (topo, algo)
        # And keeps them busier on average.
        assert resccl.avg_idle_fraction < msccl.avg_idle_fraction, (topo, algo)
        tb_savings.append(1 - resccl.tbs_per_rank / msccl.tbs_per_rank)
        idle_gains.append(msccl.avg_idle_fraction - resccl.avg_idle_fraction)

    # Table 3 Topo1/Topo2 expert TB counts match the paper exactly.
    assert results[("Topo1", "Expert AR")]["MSCCL"].tbs_per_rank == 14
    assert results[("Topo1", "Expert AR")]["ResCCL"].tbs_per_rank == 8
    assert results[("Topo2", "Expert AR")]["MSCCL"].tbs_per_rank == 30
    assert results[("Topo2", "Expert AR")]["ResCCL"].tbs_per_rank == 16
    # Peak savings in the paper's bands.
    assert max(tb_savings) > 0.60
    assert max(idle_gains) > 0.30

"""Ablation: the TB-merge pipelining allowance (DESIGN.md design choice).

A naive (allowance-0) merge serializes connections whose static windows
merely abut: HM ReduceScatter collapses 16 endpoints into 4 TBs and loses
over 2x bandwidth; TACCL AllGather's genuinely phase-separated endpoints
merge for free under either policy.
"""

from conftest import once

from repro.experiments import ablations


def test_ablation_tb_merge_allowance(once):
    result = once(ablations.run_tb_merge)
    print("\n" + result.render())

    results = result.data
    hm = results["HM ReduceScatter"]
    naive, guarded = (
        hm["naive merge (allowance 0)"],
        hm["allowance = n_mb"],
    )
    # The naive merge over-serializes the reduce chains badly.
    assert guarded.algo_bandwidth > 1.5 * naive.algo_bandwidth
    assert naive.max_tbs_per_rank() < guarded.max_tbs_per_rank()

    taccl = results["TACCL AllGather"]
    naive, guarded = (
        taccl["naive merge (allowance 0)"],
        taccl["allowance = n_mb"],
    )
    # Phase-separated connections keep their merge either way: same TB
    # footprint, no bandwidth cost.
    assert guarded.max_tbs_per_rank() == naive.max_tbs_per_rank()
    assert guarded.algo_bandwidth >= 0.95 * naive.algo_bandwidth

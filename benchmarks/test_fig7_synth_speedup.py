"""Figure 7: ResCCL speedup over MSCCL on synthesized algorithms.

Paper findings: ResCCL consistently accelerates TECCL schedules
(4.6% up to 1.5x) and TACCL schedules beyond ~8-16 MB (up to 1.4x), with
slight drops (<= 8.5%) only at small buffers.
"""

from conftest import once

from repro.experiments import fig7


def test_fig7_synth_speedup(once):
    result = once(fig7.run)
    print("\n" + result.render())

    results = result.data
    for (nodes, synth, coll, size), speedup in results.items():
        if size >= 128:
            # Medium/large buffers: ResCCL wins.
            assert speedup > 1.0, (nodes, synth, coll, size)
        # Small-buffer drops stay bounded (paper: <= 8.5% for TACCL).
        assert speedup > 0.80, (nodes, synth, coll, size)
    # Peak speedups reach the paper's 1.2x-1.5x band somewhere.
    assert max(results.values()) > 1.2

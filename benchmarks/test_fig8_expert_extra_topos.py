"""Figure 8: expert algorithms under additional topologies (4-GPU nodes).

Paper findings on 2x4 and 4x4 A100 clusters: AG 1.6x-2.3x over NCCL and
+6.8-23.1% over MSCCL; AR up to 3.7x over NCCL and up to 2.4x over MSCCL.
"""

from conftest import once

from repro.experiments import fig8


def test_fig8_expert_extra_topologies(once):
    result = once(fig8.run)
    print("\n" + result.render())

    results = result.data
    for (nodes, coll, size), bws in results.items():
        if size >= 128:
            # ResCCL beats MSCCL everywhere at medium/large buffers.
            assert bws["ResCCL"] >= 0.99 * bws["MSCCL"], (nodes, coll, size)
            if coll == "AllGather":
                assert bws["ResCCL"] > bws["NCCL"], (nodes, coll, size)
            else:
                # AllReduce at 4x4 is near-parity with our multi-rail
                # NCCL model (the paper's NCCL, which ResCCL beats by up
                # to 3.7x here, engaged fewer rails at 4 GPUs per node).
                assert bws["ResCCL"] > 0.85 * bws["NCCL"], (nodes, coll, size)
    # AllGather gains over NCCL land in the paper's >1.3x region at scale.
    large_ag = results[(2, "AllGather", 512)]
    assert large_ag["ResCCL"] / large_ag["NCCL"] > 1.3
    # AllReduce at 2x4 clearly beats both baselines.
    large_ar = results[(2, "AllReduce", 512)]
    assert large_ar["ResCCL"] > large_ar["NCCL"]
    assert large_ar["ResCCL"] / large_ar["MSCCL"] > 1.2

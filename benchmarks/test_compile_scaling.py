"""Cold-compile scaling: indexed vs reference compile path.

Times the three hot compile stages — dependency analysis (fused
``build_dag``), HPDS scheduling, and state-based TB allocation — with
the indexed implementations against the original reference
implementations (``ResCCLCompiler(indexed_schedule=False)``) on growing
clusters, checking that (a) the two modes produce bit-identical
pipelines, TB assignments, and rendered kernels at every scale
(``compile_fingerprint``), and (b) the aggregate cold-compile speedup on
the largest cluster clears the 3x acceptance bar.  Writes
``BENCH_compile.json`` at the repo root for CI diffing.

``RESCCL_COMPILE_BENCH_SCALES=small`` restricts the sweep to the
smallest cluster and drops the speedup assertion — the CI perf-smoke
mode, which still enforces bit-identity.
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

from conftest import once  # noqa: F401  (pytest fixture)

from repro.algorithms import build_algorithm
from repro.core import ResCCLCompiler
from repro.core.compiler import compile_fingerprint
from repro.synth import TACCLSynthesizer
from repro.topology import Cluster

OUT = Path(__file__).resolve().parent.parent / "BENCH_compile.json"

#: (nodes, gpus); the last entry is the largest cluster and carries the
#: 3x acceptance assertion over the summed cold-compile wall clock.
SCALES = ((2, 8), (4, 8), (8, 8))

#: Cold-compile stages the indexed path rewrites; parsing is excluded
#: (programs are passed pre-built, and the DSL parser is untouched).
STAGES = ("analysis", "scheduling", "lowering")

MIN_SPEEDUP_LARGEST = 3.0
REPEATS = 3


def _programs(cluster):
    """The benchmarked algorithm mix: three built-ins plus a synthesized
    TACCL-style allgather, whose irregular relay pattern stresses the
    hazard analysis and link arbitration differently than the
    hand-written collectives."""
    for name in ("ring-allreduce", "mesh-allreduce", "hm-allreduce"):
        yield name, build_algorithm(name, cluster)
    yield "taccl-allgather", TACCLSynthesizer().synthesize_allgather(cluster)


def _cold_compile(program, cluster, indexed):
    """Best-of-N cold compile; returns (best stage times, last result).

    ``validate=True`` would time the static validator — shared by both
    modes and untouched by the indexed rewrite — so it is disabled to
    keep the measurement on the three rewritten stages.
    """
    compiler = ResCCLCompiler(validate=False, indexed_schedule=indexed)
    best = {stage: float("inf") for stage in STAGES}
    result = None
    # A collection landing mid-compile skews one mode's wall clock by
    # tens of ms; collect up front, then keep the collector off while
    # the clock runs.
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            result = compiler.compile(program, cluster)
            for stage in STAGES:
                best[stage] = min(best[stage], result.phase_times_us[stage])
    finally:
        gc.enable()
    return best, result


def _compile_scaling(scales) -> list:
    rows = []
    for nodes, gpus in scales:
        cluster = Cluster(nodes=nodes, gpus_per_node=gpus)
        kernel_ranks = [0, cluster.world_size - 1]
        for name, program in _programs(cluster):
            indexed_us, indexed = _cold_compile(program, cluster, True)
            reference_us, reference = _cold_compile(program, cluster, False)
            identical = compile_fingerprint(
                indexed, kernel_ranks=kernel_ranks
            ) == compile_fingerprint(reference, kernel_ranks=kernel_ranks)
            total_indexed = sum(indexed_us.values())
            total_reference = sum(reference_us.values())
            rows.append(
                {
                    "scale": f"{nodes}x{gpus}",
                    "algorithm": name,
                    "tasks": len(indexed.dag),
                    "edges": indexed.dag.edge_count,
                    "sub_pipelines": indexed.pipeline.depth,
                    "tbs": indexed.tb_count(),
                    "stage_us_indexed": indexed_us,
                    "stage_us_reference": reference_us,
                    "wall_us_indexed": total_indexed,
                    "wall_us_reference": total_reference,
                    "speedup": total_reference / total_indexed,
                    "bit_identical": identical,
                }
            )
    return rows


def test_compile_scaling(once):  # noqa: F811  (fixture shadows import)
    small = os.environ.get("RESCCL_COMPILE_BENCH_SCALES") == "small"
    scales = SCALES[:1] if small else SCALES
    rows = once(_compile_scaling, scales)
    result = {
        "scales": [f"{n}x{g}" for n, g in scales],
        "stages": list(STAGES),
        "rows": rows,
    }
    OUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    for row in rows:
        print(
            f"  {row['scale']} {row['algorithm']:<16} "
            f"{row['tasks']:>5} tasks  "
            f"idx {row['wall_us_indexed'] / 1e3:8.1f}ms vs "
            f"ref {row['wall_us_reference'] / 1e3:8.1f}ms  "
            f"speedup {row['speedup']:.2f}x"
            + ("" if row["bit_identical"] else "  DIVERGED")
        )

    # Bit-identity is unconditional: the indexed path is an optimization,
    # never an approximation, at every scale and for every algorithm.
    diverged = [r for r in rows if not r["bit_identical"]]
    assert not diverged, diverged

    if small:
        return
    largest = [r for r in rows if r["scale"] == f"{scales[-1][0]}x{scales[-1][1]}"]
    agg_reference = sum(r["wall_us_reference"] for r in largest)
    agg_indexed = sum(r["wall_us_indexed"] for r in largest)
    agg_speedup = agg_reference / agg_indexed
    print(f"  aggregate speedup at {largest[0]['scale']}: {agg_speedup:.2f}x")
    assert agg_speedup >= MIN_SPEEDUP_LARGEST, rows

"""Figure 12: per-TB time breakdown on the V100 cluster.

Paper findings: up to 75% fewer TBs than MSCCL, thread occupation as low
as 3.8% of MSCCL's (early release), +43.4-66.9% average utilization.
"""

from conftest import once

from repro.analysis import format_table, tb_breakdown
from repro.experiments import fig12
from repro.experiments.fig12 import occupancy_us


def test_fig12_tb_time_breakdown(once):
    result = once(fig12.run)
    print("\n" + result.render())

    # Per-TB detail for rank 0, as the figure plots.
    for algo, reports in result.data.items():
        for backend_name, report in reports.items():
            entries = [e for e in tb_breakdown(report) if e.rank == 0][:8]
            rows = [
                [
                    f"TB{e.tb_index}",
                    f"{e.execution_us / 1e3:.2f}",
                    f"{e.sync_us / 1e3:.2f}",
                    f"{e.data_wait_us / 1e3:.2f}",
                    f"{e.tail_us / 1e3:.2f}",
                    f"{e.idle_fraction:.0%}",
                ]
                for e in entries
            ]
            print(f"\n{algo} / {backend_name} ({report.tb_count()} TBs):")
            print(
                format_table(
                    ["TB", "exec ms", "sync ms", "data ms", "tail ms", "idle"],
                    rows,
                    indent="  ",
                )
            )

    for algo, reports in result.data.items():
        msccl, resccl = reports["MSCCL"], reports["ResCCL"]
        occupancy_ratio = occupancy_us(resccl) / occupancy_us(msccl)
        util_gain = resccl.avg_busy_fraction() - msccl.avg_busy_fraction()
        # ResCCL frees SM resources: far fewer TB-microseconds occupied.
        assert occupancy_ratio < 0.6, algo
        # Early release: generated kernels retain no finished TBs.
        assert all(e.tail_us == 0.0 for e in tb_breakdown(resccl))
        # Interpreter TBs are retained to kernel exit (some tail exists).
        assert any(e.tail_us > 0.0 for e in tb_breakdown(msccl))
        # Higher average utilization (paper: +43.4%-66.9%).
        assert util_gain > 0.10, algo

"""Robustness extension: replan-and-resume vs ring fallback.

Kills one seeded NVLink egress edge at 50% of each algorithm's clean
completion time and recovers the same run twice: once with the
``replan`` policy (checkpoint the delivered progress, re-compile only
the residual collective for the degraded fabric, resume) and once with
the ``fallback`` policy (discard progress, restart on a derated ring).
Replanning pays only for the undelivered chunks, so its goodput must be
strictly better on every algorithm; both recovered runs are
postcondition-checked by the semantic delivery verifier (stitched
checkpoint + resume for replan).  Writes ``BENCH_replan.json`` at the
repo root for CI diffing.
"""

from __future__ import annotations

import json
from pathlib import Path

from conftest import once

from repro import MB
from repro.algorithms import build_algorithm
from repro.core import ResCCLBackend
from repro.faults import FaultPlan, plan_edges, run_with_faults
from repro.runtime.simulator import simulate
from repro.topology import Cluster

OUT = Path(__file__).resolve().parent.parent / "BENCH_replan.json"

NODES, GPUS = 2, 4
BUFFER_BYTES = 8 * MB
ALGORITHMS = ("ring-allreduce", "ring-allgather", "mesh-allreduce")
KILL_AT_FRACTION = 0.5


def _kill_edge(plan, baseline) -> str:
    """Deterministic non-partitioning victim: an NVLink egress that is
    still busy late in the clean run (walk the completion order from the
    back), so a mid-run kill actually lands on live traffic.  Intra-node
    transfers from its rank must detour, but the NIC path to the peer
    node survives, so a two-hop relay always exists.
    """
    for task_id, _mb in reversed(baseline.completion_order):
        task = plan.dag.task(task_id)
        for edge in plan.cluster.path(task.src, task.dst).edges:
            if edge.startswith("nv:out:"):
                return edge
    raise AssertionError(f"no NVLink egress among {plan_edges(plan)}")


def _compare_policies() -> dict:
    cluster = Cluster(nodes=NODES, gpus_per_node=GPUS)
    backend = ResCCLBackend(max_microbatches=4)
    out = {
        "cluster": f"{NODES}x{GPUS}",
        "buffer_mb": int(BUFFER_BYTES // MB),
        "kill_at_fraction": KILL_AT_FRACTION,
        "algorithms": {},
    }
    for name in ALGORITHMS:
        program = build_algorithm(name, cluster)
        plan = backend.plan(cluster, program, BUFFER_BYTES)
        baseline = simulate(plan)
        edge = _kill_edge(plan, baseline)
        kill_at = KILL_AT_FRACTION * baseline.completion_time_us
        entry = {
            "edge": edge,
            "kill_at_us": kill_at,
            "baseline_us": baseline.completion_time_us,
            "policies": {},
        }
        for policy in ("replan", "fallback"):
            outcome = run_with_faults(
                plan,
                FaultPlan().kill(edge, kill_at),
                recovery=policy,
                verify=True,
            )
            stats = outcome.report.fault_stats
            entry["policies"][policy] = {
                "completion_time_us": outcome.report.completion_time_us,
                "goodput_ratio": outcome.goodput_ratio,
                "slowdown": outcome.slowdown,
                "replans": stats.replans if stats else 0,
                "fallbacks": stats.fallbacks if stats else 0,
            }
        out["algorithms"][name] = entry
    return out


def test_replan_recovery(once):
    result = once(_compare_policies)
    OUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    for name, entry in result["algorithms"].items():
        replan = entry["policies"]["replan"]
        fallback = entry["policies"]["fallback"]
        print(
            f"  {name:<16} kill {entry['edge']} @ "
            f"{entry['kill_at_us'] / 1e3:.2f} ms  "
            f"replan {replan['goodput_ratio']:.3f} vs "
            f"fallback {fallback['goodput_ratio']:.3f} goodput"
        )

    assert set(result["algorithms"]) == set(ALGORITHMS)
    for name, entry in result["algorithms"].items():
        replan = entry["policies"]["replan"]
        fallback = entry["policies"]["fallback"]
        # The recovery actually took the rung it was asked for.
        assert replan["replans"] >= 1, (name, replan)
        assert fallback["fallbacks"] >= 1, (name, fallback)
        assert replan["fallbacks"] == 0, (name, replan)
        # Resuming the residual collective beats restarting on a ring:
        # strictly better goodput on every algorithm (acceptance bar).
        assert replan["goodput_ratio"] > fallback["goodput_ratio"], (
            name, replan, fallback,
        )
        # Both survived, neither hit the clean run's goodput.
        assert 0.0 < fallback["goodput_ratio"] < 1.0, (name, fallback)
        assert 0.0 < replan["goodput_ratio"] < 1.0, (name, replan)

"""Ablation: transport protocols (Table 2's Simple / LL / LL128).

The setup section's trade-off — Simple for sustained bandwidth, LL for
latency, LL128 for both (partially) — must show as a crossover: the
low-latency protocols win on tiny buffers, Simple wins at scale.
"""

from conftest import once

from repro.experiments import ablations


def test_ablation_transport_protocols(once):
    result = once(ablations.run_protocols)
    print("\n" + result.render())

    results = result.data
    # Latency regime: the low-latency protocols beat Simple on tiny
    # buffers.
    assert results[("LL128", 1)] > results[("Simple", 1)]
    # Bandwidth regime: Simple sustains the most at scale.
    assert results[("Simple", 512)] > results[("LL", 512)]
    assert results[("Simple", 512)] >= results[("LL128", 512)] * 0.98
    # LL's 50% wire efficiency caps it well below Simple at scale.
    assert results[("LL", 512)] < 0.75 * results[("Simple", 512)]
    # LL128 recovers most of the bandwidth LL gives up.
    assert results[("LL128", 512)] > 1.3 * results[("LL", 512)]

"""Figure 9: synthesized algorithms under additional topologies.

Paper findings on 2x4 and 4x4 A100 clusters: ResCCL outperforms MSCCL by
9.8%-31.1% on synthesized AllGather and up to 50.1% on AllReduce.
"""

from conftest import once

from repro.experiments import fig9


def test_fig9_synth_extra_topologies(once):
    result = once(fig9.run)
    print("\n" + result.render())

    results = result.data
    for key, speedup in results.items():
        nodes, synth, coll, size = key
        if size >= 128:
            assert speedup > 0.95, key
        assert speedup > 0.80, key
    assert max(results.values()) > 1.15

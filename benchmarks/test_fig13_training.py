"""Figure 13: end-to-end Megatron training throughput, GPT-3 and T5.

Paper findings: T5 (DP) +18-39% over NCCL and +7.1%-1.8x over MSCCL;
GPT-3 (TP) +11-20% over NCCL and +7.5-29.3% over MSCCL.

Shape to reproduce: ResCCL > NCCL and ResCCL > MSCCL on every model,
with T5 (communication-heavier) gaining more than GPT-3.
"""

from conftest import once

from repro.experiments import fig13


def test_fig13_training_throughput(once):
    result = once(fig13.run)
    print("\n" + result.render())

    results = result.data
    for model, bws in results.items():
        # ResCCL improves end-to-end throughput over both baselines.
        assert bws["ResCCL"] > bws["NCCL"], model
        assert bws["ResCCL"] > bws["MSCCL"], model

    # T5 gains more than GPT-3 (communication-heavier workload).
    t5_gain = results["T5 220M"]["ResCCL"] / results["T5 220M"]["NCCL"] - 1
    gpt_gain = (
        results["GPT-3 44B"]["ResCCL"] / results["GPT-3 44B"]["NCCL"] - 1
    )
    assert t5_gain > gpt_gain
    # Double-digit percentage gain at the communication-bound end.
    assert t5_gain > 0.10

"""Table 1: global link utilization of existing algorithms on MSCCL.

Paper values (MSCCL backend executing MSCCLang-expert, TACCL- and
TECCL-synthesized algorithms):

    Topo               MS-AG   MS-AR   TA-AG   TA-AR   TE-AG
    1 server (8)       76.7%   71.0%   51.6%   45.7%   52.7%
    2 servers (16)     67.5%   61.8%   34.3%   31.8%   33.2%
    4 servers (32)     66.8%   46.1%   44.6%   41.9%   38.1%

Shape to reproduce: utilization far below perfect for synthesized
algorithms, expert beating synthesized everywhere, AR below AG, and
synthesized utilization degrading past one server.
"""

from conftest import once

from repro.experiments import table1


def test_table1_link_utilization(once):
    result = once(table1.run)
    print("\n" + result.render())

    results = result.data
    for scale, (ms_ag, ms_ar, ta_ag, ta_ar, te_ag) in results.items():
        # Synthesized algorithms leave links mostly idle — the paper's
        # core motivation finding.
        assert max(ta_ag, ta_ar, te_ag) < 0.60, scale
        # Expert algorithms use links better than synthesized ones.
        assert ms_ag > ta_ag, scale
        assert ms_ag > te_ag, scale
        assert ms_ar > ta_ar, scale
        # AllReduce never reaches the AllGather's utilization (reduction
        # chains serialize), mirroring MS-AR < MS-AG in every paper row.
        assert ms_ar < ms_ag + 0.05, scale
    # Synthesized utilization degrades when leaving a single server.
    assert results[16][2] < results[8][2]
    assert results[16][4] < results[8][4]

"""Figure 10(b): HPDS vs round-robin scheduling.

Paper finding: on an 8-GPU two-server topology, HPDS consistently
outperforms round-robin on expert and synthesized algorithms, up to 187%.

Shape to reproduce: HPDS never meaningfully worse, clear wins where
arbitration freedom exists.  The fluid-flow runtime forgives ordering
differences real hardware punishes, so the margin is far below 187%
(see EXPERIMENTS.md).
"""

from conftest import once

from repro.experiments import fig10


def test_fig10b_hpds_vs_rr(once):
    result = once(fig10.run_schedulers)
    print("\n" + result.render())

    speedups = {key: h / r for key, (h, r) in result.data.items()}
    # HPDS never loses meaningfully.
    assert all(s > 0.90 for s in speedups.values()), speedups
    # And wins clearly somewhere (synthesized schedules).
    assert max(speedups.values()) > 1.10
    # On aggregate HPDS is at least on par.
    assert sum(speedups.values()) / len(speedups) > 0.97

"""Overhead benchmark for end-to-end request tracing.

Boots the same daemon three times over one pre-warmed plan cache —
tracing **off** (``trace_sample=0``), **sampled** (every 16th request),
and **always-on** (every request) — and drives each with the same
multi-threaded warm closed loop the service load benchmark uses,
recording sustained req/s and p50/p99 latency per mode.

The bar: always-on tracing (span trees in every worker, stitching and
flight-recorder offers on every request) must cost **at most 5% of warm
throughput** versus tracing off.  Writes ``BENCH_obs_overhead.json`` at
the repo root for CI diffing.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from conftest import once  # noqa: F401 - pytest fixture re-export

from repro.service import ServiceClient, ServiceConfig, ServiceDaemon

OUT = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

WORKERS = 2
CLIENT_THREADS = 4
WARM_SECONDS = 2.5
WARMUP_REQUESTS = 4  # per daemon, before the timed window

#: Warm-loop bodies — cheap distinct keys so the measurement is
#: dominated by the service path, not a single cold compile.
BODIES = [
    {"algorithm": "ring-allreduce", "nodes": 1, "gpus": 8,
     "buffer_mb": 16.0, "mbs": 4},
    {"algorithm": "ring-allgather", "nodes": 1, "gpus": 8,
     "buffer_mb": 16.0, "mbs": 4},
    {"algorithm": "tree-allreduce", "nodes": 1, "gpus": 8,
     "buffer_mb": 16.0, "mbs": 4},
]

MODES = [
    ("off", 0.0),
    ("sampled_1_16", 1.0 / 16.0),
    ("always_on", 1.0),
]


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _drive(port, failures):
    """Warm closed loop; returns per-request latencies (ms) + wall (s)."""
    latencies = []
    lock = threading.Lock()
    stop_at = time.perf_counter() + WARM_SECONDS

    def closed_loop(offset):
        with ServiceClient("127.0.0.1", port, timeout_s=120.0) as client:
            index = offset
            while time.perf_counter() < stop_at:
                body = BODIES[index % len(BODIES)]
                index += 1
                t0 = time.perf_counter()
                try:
                    reply = client.simulate(**body)
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(f"request failed: {exc!r}")
                    return
                elapsed_ms = (time.perf_counter() - t0) * 1e3
                if not reply.get("ok"):
                    failures.append(f"bad reply: {reply}")
                with lock:
                    latencies.append(elapsed_ms)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=closed_loop, args=(i,))
        for i in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return latencies, time.perf_counter() - start


def _run_modes(cache_dir):
    failures = []
    results = {}
    for mode, rate in MODES:
        daemon = ServiceDaemon(ServiceConfig(
            port=0, workers=WORKERS, queue_depth=64,
            cache_dir=str(cache_dir), default_deadline_ms=120_000.0,
            trace_sample=rate,
        ))
        daemon.start()
        try:
            with ServiceClient("127.0.0.1", daemon.port,
                               timeout_s=300.0) as client:
                for index in range(WARMUP_REQUESTS):
                    client.simulate(**BODIES[index % len(BODIES)])
            latencies, wall_s = _drive(daemon.port, failures)
            retained = len(daemon.recorder)
        finally:
            daemon.stop()
        ordered = sorted(latencies)
        results[mode] = {
            "trace_sample": rate,
            "requests": len(ordered),
            "wall_s": round(wall_s, 3),
            "req_per_s": round(len(ordered) / wall_s, 2) if wall_s else 0.0,
            "p50_ms": round(_percentile(ordered, 0.50), 3),
            "p99_ms": round(_percentile(ordered, 0.99), 3),
            "retained_traces": retained,
        }
    return {"modes": results, "failures": failures,
            "workers": WORKERS, "client_threads": CLIENT_THREADS}


def test_obs_overhead(tmp_path, once):
    data = once(_run_modes, tmp_path / "plan-cache")

    print("\ntracing overhead (warm closed loop):")
    for mode, summary in data["modes"].items():
        print(
            f"  {mode:>12}: {summary['requests']} requests, "
            f"{summary['req_per_s']} req/s, p50 {summary['p50_ms']} ms, "
            f"p99 {summary['p99_ms']} ms, "
            f"{summary['retained_traces']} retained"
        )
    off = data["modes"]["off"]
    always = data["modes"]["always_on"]
    overhead = 1.0 - (always["req_per_s"] / off["req_per_s"]
                      if off["req_per_s"] else 0.0)
    data["always_on_overhead_frac"] = round(overhead, 4)
    print(f"  always-on overhead: {overhead:.1%} of off-mode throughput")

    OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")

    assert not data["failures"], data["failures"]
    for summary in data["modes"].values():
        assert summary["requests"] > 0
    # Tracing off must retain nothing; always-on must retain traces.
    assert data["modes"]["off"]["retained_traces"] == 0
    assert always["retained_traces"] > 0
    # The acceptance bar: always-on tracing costs <= 5% throughput.
    assert always["req_per_s"] >= 0.95 * off["req_per_s"], (
        f"always-on tracing cost {overhead:.1%} "
        f"({always['req_per_s']} vs {off['req_per_s']} req/s)"
    )

"""Section 4.4 extension: resilience to link congestion.

The paper argues ResCCL's conflict-free allocation "inherently mitigates
congestion".  Measured two ways: (1) MSCCL's clean bandwidth collapses as
the Equation 1 conflict penalty grows while ResCCL's barely moves;
(2) under external NIC congestors, ResCCL retains the highest absolute
bandwidth on any fabric with a real conflict penalty.
"""

from conftest import once

from repro.experiments import ablations

GAMMAS = (0.0, 0.03, 0.1, 0.3)


def test_contention_resilience(once):
    result = once(ablations.run_contention, GAMMAS)
    print("\n" + result.render())

    results = result.data
    # 1. Conflict sensitivity: harshest vs mildest fabric penalty.
    msccl_drop = 1 - results[0.3]["MSCCL"][0] / results[0.0]["MSCCL"][0]
    resccl_drop = 1 - results[0.3]["ResCCL"][0] / results[0.0]["ResCCL"][0]
    assert msccl_drop > 2 * resccl_drop, (msccl_drop, resccl_drop)
    # 2. On any fabric that actually penalizes conflicts (gamma > 0),
    # ResCCL keeps the highest absolute bandwidth under congestion.  At
    # gamma == 0 extra channels are free and the comparison is a wash.
    for gamma, row in results.items():
        if gamma > 0:
            assert row["ResCCL"][1] > row["MSCCL"][1], gamma
    # 3. The loaded advantage widens monotonically with fabric harshness.
    advantages = [
        results[g]["ResCCL"][1] / results[g]["MSCCL"][1] for g in GAMMAS
    ]
    assert advantages == sorted(advantages)
